"""Per-model behaviour profiles and the paper's 80 scenario plans.

Two layers:

* **Model styles** — each of the four Table V models carries its own
  :class:`TranspileOptions` (naming, block size, formatting).  This is what
  spreads the Sim-T / Sim-L similarity metrics across models the way the
  paper's Tables VI/VII show.
* **Cell plans** — for the paper profile, each (model, direction, app) cell
  carries a :class:`CellPlan` describing the *behaviour class* observed in
  Tables VI/VII: success with k self-corrections, or one of the N/A modes,
  plus style overrides that decide the runtime-Ratio shape (literal staging
  vs data regions vs loop hoisting vs perf faults).  Plans pin which faults
  are injected and when repairs land; every reported number still emerges
  from compiling/running the resulting code.

For unplanned scenarios (new apps, new seeds) the **stochastic profile**
draws outcomes from per-model probabilities, so the machinery is usable far
beyond the 80 paper cells.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple

from repro.llm.faults import faults_for
from repro.llm.transpiler import TranspileOptions
from repro.minilang.codegen import CodegenStyle
from repro.minilang.source import Dialect
from repro.utils.rng import RngStream

#: Direction keys used throughout the experiment layer.
OMP2CUDA = "omp2cuda"
CUDA2OMP = "cuda2omp"


def direction_key(source: Dialect, target: Dialect) -> str:
    if source is Dialect.OMP and target is Dialect.CUDA:
        return OMP2CUDA
    if source is Dialect.CUDA and target is Dialect.OMP:
        return CUDA2OMP
    raise ValueError(f"unsupported direction {source} -> {target}")


@dataclass(frozen=True)
class CellPlan:
    """Planned behaviour for one (model, direction, app) scenario.

    ``outcome``:
      * ``ok``          — eventually compiles, runs and verifies;
      * ``na-compile``  — never produces compilable code (unfixable);
      * ``na-runtime``  — never produces code that executes cleanly;
      * ``na-output``   — runs but prints wrong results (caught by output
        comparison, like the paper's manually-detected mismatches).
    """

    outcome: str = "ok"
    #: Number of self-correction rounds before success (``ok`` only).
    self_corrections: int = 0
    #: Explicit fault sequence; auto-selected per dialect when empty.
    fault_ids: Tuple[str, ...] = ()
    #: TranspileOptions overrides for this cell (style / data-region / hoist).
    style: Tuple[Tuple[str, object], ...] = ()
    #: A perf-stage fault applied to every generation (never corrected).
    perf_fault: Optional[str] = None

    def options_for(self, base: TranspileOptions) -> TranspileOptions:
        if not self.style:
            return base
        return replace(base, **dict(self.style))


#: Direction-dependent style adjustments.  Translating OpenMP loops into
#: CUDA invites more restructuring (kernel extraction, staging) than the
#: reverse, and the paper's Table VI similarities are correspondingly lower
#: than Table VII's for every model — modelled here as declaration hoisting
#: kicking in for the conservative models too when they synthesize CUDA.
DIRECTION_STYLE_TWEAKS: Dict[Tuple[str, str], Tuple[Tuple[str, object], ...]] = {
    ("gpt4", OMP2CUDA): (("hoist_decls", True),),
    ("codestral", OMP2CUDA): (("hoist_decls", True), ("loop_var", "tid")),
}


#: Base style per model: four distinct "voices".
MODEL_STYLES: Dict[str, TranspileOptions] = {
    "gpt4": TranspileOptions(
        device_prefix="d_",
        kernel_name_template="{stem}_kernel",
        block_size=256,
        loop_var="idx",
        codegen=CodegenStyle(indent="  ", brace_same_line=True, pointer_left=True),
    ),
    "codestral": TranspileOptions(
        device_prefix="d_",
        kernel_name_template="{stem}_gpu",
        block_size=256,
        loop_var="i",
        codegen=CodegenStyle(indent="    ", brace_same_line=True, pointer_left=True),
    ),
    "wizardcoder": TranspileOptions(
        device_prefix="dev_",
        kernel_name_template="kernel_{i}",
        block_size=128,
        loop_var="tid",
        rename_scheme="suffix",
        hoist_decls=True,
        codegen=CodegenStyle(indent="  ", brace_same_line=True, pointer_left=False),
    ),
    "deepseek": TranspileOptions(
        device_prefix="gpu_",
        kernel_name_template="k_{stem}",
        block_size=512,
        loop_var="gid",
        rename_scheme="verbose",
        hoist_decls=True,
        codegen=CodegenStyle(indent="    ", brace_same_line=False, pointer_left=True),
    ),
}

# ---------------------------------------------------------------------------
# Paper plans: Tables VIa/VIb (OpenMP -> CUDA)
# ---------------------------------------------------------------------------

_L = (("use_data_region", False),)       # literal staging (slow translations)
_H = (("hoist_invariant_repeat", True),)  # idempotent-repeat hoisting
_NT = (("emit_num_threads", True),)

_PAPER: Dict[Tuple[str, str, str], CellPlan] = {}


def _plan(model: str, direction: str, app: str, **kw) -> None:
    _PAPER[(model, direction, app)] = CellPlan(**kw)


# --- Table VIa: GPT-4, OMP->CUDA ------------------------------------------
_plan("gpt4", OMP2CUDA, "matrix-rotate", self_corrections=1,
      fault_ids=("undeclared-index-cuda",))
_plan("gpt4", OMP2CUDA, "jacobi")
_plan("gpt4", OMP2CUDA, "layout")
_plan("gpt4", OMP2CUDA, "atomicCost")
_plan("gpt4", OMP2CUDA, "dense-embedding", outcome="na-compile",
      fault_ids=("missing-launch-arg",))
_plan("gpt4", OMP2CUDA, "pathfinder")
_plan("gpt4", OMP2CUDA, "bsearch", outcome="na-output",
      fault_ids=("missing-copyback-cuda",))
_plan("gpt4", OMP2CUDA, "entropy", self_corrections=1,
      fault_ids=("oob-guard-cuda",))
_plan("gpt4", OMP2CUDA, "colorwheel", self_corrections=3,
      fault_ids=("missing-device-decl", "kernel-called-directly",
                 "oob-guard-cuda"))
_plan("gpt4", OMP2CUDA, "randomAccess", outcome="na-runtime",
      fault_ids=("missing-cudamalloc",))

# --- Table VIa: Codestral, OMP->CUDA --------------------------------------
_plan("codestral", OMP2CUDA, "matrix-rotate")
_plan("codestral", OMP2CUDA, "jacobi")
_plan("codestral", OMP2CUDA, "layout")
_plan("codestral", OMP2CUDA, "atomicCost")
_plan("codestral", OMP2CUDA, "dense-embedding", self_corrections=1,
      fault_ids=("missing-semicolon",))
_plan("codestral", OMP2CUDA, "pathfinder", self_corrections=1,
      fault_ids=("undeclared-index-cuda",))
_plan("codestral", OMP2CUDA, "bsearch")
_plan("codestral", OMP2CUDA, "entropy", self_corrections=2,
      fault_ids=("missing-semicolon", "oob-guard-cuda"))
_plan("codestral", OMP2CUDA, "colorwheel", outcome="na-output",
      fault_ids=("missing-copyback-cuda",))
_plan("codestral", OMP2CUDA, "randomAccess", self_corrections=2,
      fault_ids=("missing-launch-arg", "missing-semicolon"))

# --- Table VIb: Wizard Coder, OMP->CUDA ------------------------------------
_plan("wizardcoder", OMP2CUDA, "matrix-rotate")
_plan("wizardcoder", OMP2CUDA, "jacobi")
_plan("wizardcoder", OMP2CUDA, "layout")
_plan("wizardcoder", OMP2CUDA, "atomicCost", perf_fault="tiny-block-cuda")
_plan("wizardcoder", OMP2CUDA, "dense-embedding")
_plan("wizardcoder", OMP2CUDA, "pathfinder")
_plan("wizardcoder", OMP2CUDA, "bsearch", self_corrections=1,
      fault_ids=("kernel-called-directly",))
_plan("wizardcoder", OMP2CUDA, "entropy")
_plan("wizardcoder", OMP2CUDA, "colorwheel", self_corrections=2,
      fault_ids=("missing-semicolon", "missing-launch-arg"))
_plan("wizardcoder", OMP2CUDA, "randomAccess", outcome="na-compile",
      fault_ids=("undeclared-index-cuda",))

# --- Table VIb: DeepSeek Coder v2, OMP->CUDA --------------------------------
_plan("deepseek", OMP2CUDA, "matrix-rotate")
_plan("deepseek", OMP2CUDA, "jacobi", self_corrections=1,
      fault_ids=("missing-launch-arg",))
_plan("deepseek", OMP2CUDA, "layout")
_plan("deepseek", OMP2CUDA, "atomicCost", self_corrections=1,
      fault_ids=("missing-semicolon",), perf_fault="tiny-block-cuda")
_plan("deepseek", OMP2CUDA, "dense-embedding", outcome="na-output",
      fault_ids=("missing-copyback-cuda",))
_plan("deepseek", OMP2CUDA, "pathfinder")
_plan("deepseek", OMP2CUDA, "bsearch")
_plan("deepseek", OMP2CUDA, "entropy")
_plan("deepseek", OMP2CUDA, "colorwheel", outcome="na-compile",
      fault_ids=("kernel-called-directly",))
_plan("deepseek", OMP2CUDA, "randomAccess", outcome="na-runtime",
      fault_ids=("missing-cudamalloc",))

# ---------------------------------------------------------------------------
# Paper plans: Tables VIIa/VIIb (CUDA -> OpenMP)
# ---------------------------------------------------------------------------

# --- Table VIIa: GPT-4, CUDA->OMP -------------------------------------------
_plan("gpt4", CUDA2OMP, "matrix-rotate")
_plan("gpt4", CUDA2OMP, "jacobi", style=_L)          # ratio ~1.34: literal maps
_plan("gpt4", CUDA2OMP, "layout")
_plan("gpt4", CUDA2OMP, "atomicCost", style=_L)      # ratio 0.21: slower
_plan("gpt4", CUDA2OMP, "dense-embedding", outcome="na-output",
      fault_ids=("missing-copyback-omp",))
_plan("gpt4", CUDA2OMP, "pathfinder", self_corrections=1,
      fault_ids=("oob-guard-omp",))
_plan("gpt4", CUDA2OMP, "bsearch", style=_H)         # ratio 3.11: fast
_plan("gpt4", CUDA2OMP, "entropy", self_corrections=1,
      fault_ids=("cuda-api-in-omp",))
_plan("gpt4", CUDA2OMP, "colorwheel", style=_H)
_plan("gpt4", CUDA2OMP, "randomAccess")

# --- Table VIIa: Codestral, CUDA->OMP ---------------------------------------
_plan("codestral", CUDA2OMP, "matrix-rotate")
_plan("codestral", CUDA2OMP, "jacobi", outcome="na-compile",
      fault_ids=("bad-directive-spelling",))
_plan("codestral", CUDA2OMP, "layout", self_corrections=1,
      fault_ids=("cuda-api-in-omp",))
_plan("codestral", CUDA2OMP, "atomicCost")
_plan("codestral", CUDA2OMP, "dense-embedding", outcome="na-output",
      fault_ids=("flipped-operator",))
_plan("codestral", CUDA2OMP, "pathfinder", self_corrections=34,
      fault_ids=("undeclared-index-omp", "cuda-api-in-omp",
                 "missing-semicolon", "oob-guard-omp"))
_plan("codestral", CUDA2OMP, "bsearch", perf_fault="weak-parallelism-omp",
      style=_H)  # the §V-D 20x single-thread anecdote
_plan("codestral", CUDA2OMP, "entropy")
_plan("codestral", CUDA2OMP, "colorwheel", style=_H)
_plan("codestral", CUDA2OMP, "randomAccess")

# --- Table VIIb: Wizard Coder, CUDA->OMP ------------------------------------
_plan("wizardcoder", CUDA2OMP, "matrix-rotate", self_corrections=2,
      fault_ids=("undeclared-index-omp", "oob-guard-omp"))
_plan("wizardcoder", CUDA2OMP, "jacobi", self_corrections=4,
      fault_ids=("bad-directive-spelling", "cuda-api-in-omp",
                 "missing-semicolon", "oob-guard-omp"))
_plan("wizardcoder", CUDA2OMP, "layout")
_plan("wizardcoder", CUDA2OMP, "atomicCost", self_corrections=1,
      fault_ids=("atomic-left-in-omp",))
_plan("wizardcoder", CUDA2OMP, "dense-embedding", style=_L)  # ratio ~1: literal
_plan("wizardcoder", CUDA2OMP, "pathfinder")
_plan("wizardcoder", CUDA2OMP, "bsearch", self_corrections=1,
      fault_ids=("undeclared-index-omp",), style=_H)
_plan("wizardcoder", CUDA2OMP, "entropy")
_plan("wizardcoder", CUDA2OMP, "colorwheel", self_corrections=1,
      fault_ids=("missing-semicolon",), style=_H)
_plan("wizardcoder", CUDA2OMP, "randomAccess", self_corrections=1,
      fault_ids=("cuda-api-in-omp",))

# --- Table VIIb: DeepSeek Coder v2, CUDA->OMP -------------------------------
_plan("deepseek", CUDA2OMP, "matrix-rotate", style=_L)  # ratio 0.107: slow
_plan("deepseek", CUDA2OMP, "jacobi", self_corrections=1,
      fault_ids=("cuda-api-in-omp",))
_plan("deepseek", CUDA2OMP, "layout", self_corrections=2,
      fault_ids=("undeclared-index-omp", "cuda-api-in-omp"))
_plan("deepseek", CUDA2OMP, "atomicCost", self_corrections=1,
      fault_ids=("atomic-left-in-omp",),
      style=(("privatize_atomics", True),))  # the §V-D 66x speedup anecdote
_plan("deepseek", CUDA2OMP, "dense-embedding", outcome="na-output",
      fault_ids=("missing-copyback-omp",))
_plan("deepseek", CUDA2OMP, "pathfinder", outcome="na-runtime",
      fault_ids=("oob-guard-omp",))
_plan("deepseek", CUDA2OMP, "bsearch", self_corrections=2,
      fault_ids=("undeclared-index-omp", "cuda-api-in-omp"), style=_H)
_plan("deepseek", CUDA2OMP, "entropy", self_corrections=1,
      fault_ids=("missing-semicolon",))
_plan("deepseek", CUDA2OMP, "colorwheel", self_corrections=2,
      fault_ids=("oob-guard-omp", "cuda-api-in-omp"), style=_H)
_plan("deepseek", CUDA2OMP, "randomAccess", outcome="na-output",
      fault_ids=("flipped-operator",))


def paper_plan(model: str, direction: str, app: str) -> Optional[CellPlan]:
    """The Tables VI/VII plan for a scenario, or None if unplanned."""
    return _PAPER.get((model, direction, app))


def all_paper_plans() -> Dict[Tuple[str, str, str], CellPlan]:
    return dict(_PAPER)


# ---------------------------------------------------------------------------
# Stochastic profile (unplanned scenarios / other seeds)
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class StochasticProfile:
    """Per-model outcome probabilities for unplanned scenarios."""

    p_na: float
    p_fault_per_round: float
    max_planned_corrections: int

    def draw_plan(self, rng: RngStream, target: Dialect) -> CellPlan:
        if rng.bernoulli(self.p_na):
            mode = rng.choice(["na-compile", "na-runtime", "na-output"])
            pool = {
                "na-compile": faults_for(target, "compile"),
                "na-runtime": faults_for(target, "runtime"),
                "na-output": faults_for(target, "output"),
            }[mode]
            fault = rng.choice(pool)
            return CellPlan(outcome=mode, fault_ids=(fault.fault_id,))
        corrections = 0
        fault_ids = []
        pool = faults_for(target, "compile") + faults_for(target, "runtime")
        while (
            corrections < self.max_planned_corrections
            and rng.bernoulli(self.p_fault_per_round)
        ):
            fault_ids.append(rng.choice(pool).fault_id)
            corrections += 1
        style = ()
        if rng.bernoulli(0.3):
            style = (("use_data_region", False),)
        elif rng.bernoulli(0.3):
            style = (("hoist_invariant_repeat", True),)
        return CellPlan(
            outcome="ok",
            self_corrections=corrections,
            fault_ids=tuple(fault_ids),
            style=style,
        )


STOCHASTIC_PROFILES: Dict[str, StochasticProfile] = {
    "gpt4": StochasticProfile(p_na=0.2, p_fault_per_round=0.3,
                              max_planned_corrections=4),
    "codestral": StochasticProfile(p_na=0.15, p_fault_per_round=0.4,
                                   max_planned_corrections=6),
    "wizardcoder": StochasticProfile(p_na=0.1, p_fault_per_round=0.35,
                                     max_planned_corrections=4),
    "deepseek": StochasticProfile(p_na=0.3, p_fault_per_round=0.45,
                                  max_planned_corrections=4),
}
