"""LLM client protocol and chat data types.

LASSI is LLM-agnostic: §III of the paper emphasizes that the pipeline "can be
easily modified to incorporate different LLMs".  Everything upstream of the
model — prompt assembly, self-correction, code extraction — talks to this
protocol only, so swapping the simulated model for a live Ollama or OpenAI
backend is a one-line change in the pipeline configuration.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import List, Optional


@dataclass(frozen=True)
class ChatMessage:
    """One message in a chat exchange.  ``role`` in {system, user, assistant}."""

    role: str
    content: str

    def __post_init__(self) -> None:
        if self.role not in ("system", "user", "assistant"):
            raise ValueError(f"invalid chat role {self.role!r}")


def system(content: str) -> ChatMessage:
    return ChatMessage("system", content)


def user(content: str) -> ChatMessage:
    return ChatMessage("user", content)


def assistant(content: str) -> ChatMessage:
    return ChatMessage("assistant", content)


@dataclass
class GenerationResult:
    """The model's reply plus accounting metadata."""

    text: str
    model: str
    prompt_tokens: int = 0
    completion_tokens: int = 0
    #: Total tokens this call consumed of the context window.
    @property
    def total_tokens(self) -> int:
        return self.prompt_tokens + self.completion_tokens


class LLMClient(abc.ABC):
    """Minimal chat-completion interface the pipeline depends on."""

    #: Model identifier (matches the registry name where applicable).
    name: str
    #: Context window in tokens; the pipeline budget-checks prompts.
    context_length: int

    @abc.abstractmethod
    def chat(self, messages: List[ChatMessage]) -> GenerationResult:
        """Generate a reply to the conversation."""

    def generate(self, prompt: str, system_prompt: Optional[str] = None) -> GenerationResult:
        """Single-turn convenience wrapper over :meth:`chat`."""
        messages: List[ChatMessage] = []
        if system_prompt:
            messages.append(ChatMessage("system", system_prompt))
        messages.append(ChatMessage("user", prompt))
        return self.chat(messages)
