"""Static analyses used by the rule-based transpiler.

Small, purpose-built passes over the mini-language AST:

* :func:`collect_identifiers` — free identifiers of an expression/statement;
* :func:`pointer_access_kinds` — read/write classification of every pointer
  dereferenced inside a statement (drives OpenMP ``map`` kind inference and
  the CUDA ``cudaMemcpy`` direction choices);
* :func:`substitute` — capture-naive identifier substitution (adequate
  because generated kernels use fresh parameter names).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from repro.minilang import ast


def collect_identifiers(node) -> Set[str]:
    """All identifier names appearing in an expression or statement tree."""
    names: Set[str] = set()
    for expr in ast.walk_exprs(node):
        if isinstance(expr, ast.Ident):
            names.add(expr.name)
        elif isinstance(expr, ast.Call):
            names.add(expr.callee)
        elif isinstance(expr, ast.Launch):
            names.add(expr.kernel)
    if isinstance(node, ast.Stmt):
        for stmt in ast.walk_stmts(node):
            if isinstance(stmt, ast.Pragma):
                for mc in stmt.pragma.maps:
                    names.add(mc.name)
                if stmt.pragma.reduction:
                    names.update(stmt.pragma.reduction.names)
    return names


@dataclass
class AccessInfo:
    read: bool = False
    written: bool = False

    @property
    def map_kind(self) -> str:
        if self.read and self.written:
            return "tofrom"
        if self.written:
            return "from"
        return "to"


def pointer_access_kinds(node: ast.Stmt) -> Dict[str, AccessInfo]:
    """Classify each subscripted base identifier as read and/or written."""
    info: Dict[str, AccessInfo] = {}

    def touch(name: str) -> AccessInfo:
        return info.setdefault(name, AccessInfo())

    def base_name(expr: ast.Expr) -> Optional[str]:
        if isinstance(expr, ast.Ident):
            return expr.name
        if isinstance(expr, ast.Index):
            return base_name(expr.base)
        if isinstance(expr, ast.Unary) and expr.op in ("*", "&"):
            return base_name(expr.operand)
        return None

    def visit_expr(expr: Optional[ast.Expr], as_write: bool = False) -> None:
        if expr is None:
            return
        if isinstance(expr, ast.Index):
            name = base_name(expr.base)
            if name is not None:
                acc = touch(name)
                if as_write:
                    acc.written = True
                else:
                    acc.read = True
            visit_expr(expr.index)
            # nested bases (a[b[i]]) read the inner array
            if isinstance(expr.base, ast.Index):
                visit_expr(expr.base)
            return
        if isinstance(expr, ast.Assign):
            visit_expr(expr.target, as_write=True)
            if expr.op != "=":
                visit_expr(expr.target, as_write=False)
            visit_expr(expr.value)
            return
        if isinstance(expr, (ast.Unary, ast.Postfix)):
            if isinstance(expr, ast.Unary) and expr.op == "&":
                # &a[i] passed to an atomic: treat as read+write
                name = base_name(expr.operand)
                if name is not None:
                    acc = touch(name)
                    acc.read = True
                    acc.written = True
                visit_expr(
                    expr.operand.index if isinstance(expr.operand, ast.Index) else None
                )
                return
            if expr.op in ("++", "--"):
                visit_expr(expr.operand, as_write=True)
                visit_expr(expr.operand, as_write=False)
                return
            visit_expr(expr.operand)
            return
        if isinstance(expr, ast.Binary):
            visit_expr(expr.left)
            visit_expr(expr.right)
            return
        if isinstance(expr, ast.Ternary):
            visit_expr(expr.cond)
            visit_expr(expr.then)
            visit_expr(expr.other)
            return
        if isinstance(expr, ast.Call):
            for a in expr.args:
                visit_expr(a)
            return
        if isinstance(expr, ast.Launch):
            visit_expr(expr.grid)
            visit_expr(expr.block)
            for a in expr.args:
                visit_expr(a)
            return
        if isinstance(expr, ast.Cast):
            visit_expr(expr.operand)
            return
        if isinstance(expr, ast.Member):
            visit_expr(expr.obj)
            return

    for stmt in ast.walk_stmts(node):
        if isinstance(stmt, ast.ExprStmt):
            visit_expr(stmt.expr)
        elif isinstance(stmt, ast.VarDecl):
            visit_expr(stmt.init)
        elif isinstance(stmt, ast.If):
            visit_expr(stmt.cond)
        elif isinstance(stmt, ast.For):
            visit_expr(stmt.cond)
            visit_expr(stmt.step)
        elif isinstance(stmt, (ast.While, ast.DoWhile)):
            visit_expr(stmt.cond)
        elif isinstance(stmt, ast.Return):
            visit_expr(stmt.value)
    return info


def substitute(node, mapping: Dict[str, str]):
    """Rename identifiers throughout a statement/expression tree, in place.

    Capture-naive: callers are responsible for choosing fresh names.
    Returns ``node`` for chaining.
    """
    if not mapping:
        return node
    for expr in ast.walk_exprs(node):
        if isinstance(expr, ast.Ident) and expr.name in mapping:
            expr.name = mapping[expr.name]
        elif isinstance(expr, ast.Call) and expr.callee in mapping:
            expr.callee = mapping[expr.callee]
        elif isinstance(expr, ast.Launch) and expr.kernel in mapping:
            expr.kernel = mapping[expr.kernel]
    if isinstance(node, ast.Stmt):
        for stmt in ast.walk_stmts(node):
            if isinstance(stmt, ast.VarDecl) and stmt.name in mapping:
                stmt.name = mapping[stmt.name]
            elif isinstance(stmt, ast.Pragma):
                for mc in stmt.pragma.maps:
                    if mc.name in mapping:
                        mc.name = mapping[mc.name]
                    for bound in (mc.lower, mc.length):
                        if bound is not None:
                            substitute(bound, mapping)
                red = stmt.pragma.reduction
                if red is not None:
                    red.names = [mapping.get(n, n) for n in red.names]
                for clause in (stmt.pragma.num_threads, stmt.pragma.thread_limit,
                               stmt.pragma.num_teams, stmt.pragma.schedule_chunk):
                    if clause is not None:
                        substitute(clause, mapping)
            elif isinstance(stmt, ast.For) and isinstance(stmt.init, ast.VarDecl):
                if stmt.init.name in mapping:
                    stmt.init.name = mapping[stmt.init.name]
    return node


def assigned_scalars(node: ast.Stmt) -> Set[str]:
    """Names of scalar variables assigned anywhere in the statement tree."""
    out: Set[str] = set()
    for expr in ast.walk_exprs(node):
        if isinstance(expr, ast.Assign) and isinstance(expr.target, ast.Ident):
            out.add(expr.target.name)
        elif isinstance(expr, (ast.Unary, ast.Postfix)) and expr.op in ("++", "--"):
            if isinstance(expr.operand, ast.Ident):
                out.add(expr.operand.name)
    return out


def declared_names(node: ast.Stmt) -> Set[str]:
    """Names declared (VarDecl / for-init) within the statement tree."""
    out: Set[str] = set()
    for stmt in ast.walk_stmts(node):
        if isinstance(stmt, ast.VarDecl):
            out.add(stmt.name)
    return out
