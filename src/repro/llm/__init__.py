"""LLM layer: clients, registry, transpiler, fault model, simulated models.

The LASSI pipeline is LLM-agnostic (§III of the paper): it talks to any
backend through the :class:`~repro.llm.base.LLMClient` protocol.  This
package provides

* the four-model registry of Table V,
* real-backend adapters (Ollama-style local REST, OpenAI-style chat API)
  with injectable transports,
* and :class:`~repro.llm.simulated.SimulatedLLM`, the offline stand-in: a
  rule-based CUDA<->OpenMP transpiler wrapped in a seeded fault-injection /
  repair engine whose per-model behaviour profiles are calibrated against
  the paper's Tables VI and VII.
"""

from repro.llm.base import ChatMessage, GenerationResult, LLMClient
from repro.llm.registry import LLMSpec, all_models, get_model
from repro.llm.transpiler import TranspileOptions, Transpiler

__all__ = [
    "ChatMessage",
    "GenerationResult",
    "LLMClient",
    "LLMSpec",
    "all_models",
    "get_model",
    "SimulatedLLM",
    "TranspileOptions",
    "Transpiler",
]


def __getattr__(name: str):
    # SimulatedLLM pulls in the profile tables; import lazily to keep the
    # base package import light.
    if name == "SimulatedLLM":
        from repro.llm.simulated import SimulatedLLM

        return SimulatedLLM
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
