"""The simulated LLM: transpiler competence + seeded fault/repair behaviour.

``SimulatedLLM`` implements the same :class:`~repro.llm.base.LLMClient`
protocol as the live adapters and is driven purely by the *content* of the
prompts the pipeline sends — it recognizes the knowledge-summary request,
the code-description request, the translation request and the Table III
correction prompts by their dictionary text, extracts the embedded source
code / stderr, and responds like a code model would: prose + a fenced code
block.

Behaviour per scenario comes from a :class:`~repro.llm.profiles.CellPlan`:

* generation ``k`` of an ``ok``-outcome scenario carries planned fault
  ``k`` (the model "fixes one bug and introduces the next" — the dynamics
  that give LASSI its Self-corr counts), and generation ``k = plan.
  self_corrections`` is clean;
* a correction prompt only advances the state when the quoted stderr
  matches the active fault's signature (the repair must be *about* the
  error), multiplied by a per-model repair probability in stochastic mode;
* ``na-*`` outcomes re-inject an unfixable fault class forever, which is
  how the paper's N/A cells emerge from the loop's iteration cap or the
  output comparison.
"""

from __future__ import annotations

import re
from typing import List, Optional

from repro.llm.base import ChatMessage, GenerationResult, LLMClient
from repro.llm.faults import Fault, faults_for, get_fault
from repro.llm.profiles import (
    DIRECTION_STYLE_TWEAKS,
    CellPlan,
    MODEL_STYLES,
    STOCHASTIC_PROFILES,
    direction_key,
)
from repro.llm.registry import get_model
from repro.llm.transpiler import TranspileError, Transpiler, TranspileOptions
from repro.minilang.source import Dialect
from repro.utils.rng import RngStream
from repro.utils.tokens import count_tokens

_SUMMARY_MARKER = "Summarize the following"
_DESCRIBE_MARKER = "Describe succinctly what the following"
_TRANSLATE_MARKER = "Think carefully before developing"
_CORRECTION_MARKER = "Re-factor the above code with a fix"

_CHATTER = {
    "gpt4": "Here is the complete translated code:",
    "codestral": "Below is the translated program.",
    "wizardcoder": "Sure! The fully translated code is:",
    "deepseek": "The translated code follows.",
}


class SimulatedLLM(LLMClient):
    """Offline stand-in for the paper's four models."""

    def __init__(
        self,
        model_key: str,
        source_dialect: Dialect,
        target_dialect: Dialect,
        plan: Optional[CellPlan] = None,
        seed: int = 0,
        repair_probability: float = 1.0,
    ) -> None:
        spec = get_model(model_key)
        self.spec = spec
        self.name = spec.name
        self.key = spec.key
        self.context_length = spec.context_length
        self.source_dialect = source_dialect
        self.target_dialect = target_dialect
        self.rng = RngStream(
            seed, "llm", spec.key, source_dialect.value, target_dialect.value
        )
        if plan is None:
            plan = STOCHASTIC_PROFILES[spec.key].draw_plan(
                self.rng.child("plan"), target_dialect
            )
        self.plan = plan
        self.repair_probability = repair_probability
        #: Number of repairs that have landed so far.
        self.state = 0
        #: Total chat calls (for accounting/tests).
        self.calls = 0
        base = MODEL_STYLES[spec.key]
        tweaks = DIRECTION_STYLE_TWEAKS.get(
            (spec.key, direction_key(source_dialect, target_dialect))
        )
        if tweaks:
            from dataclasses import replace as _replace

            base = _replace(base, **dict(tweaks))
        self.options: TranspileOptions = plan.options_for(base)
        self._last_source: Optional[str] = None

    # ------------------------------------------------------------------
    # LLMClient protocol
    # ------------------------------------------------------------------
    def chat(self, messages: List[ChatMessage]) -> GenerationResult:
        self.calls += 1
        prompt = messages[-1].content if messages else ""
        prompt_tokens = sum(count_tokens(m.content) for m in messages)

        if _CORRECTION_MARKER in prompt:
            text = self._handle_correction(prompt)
        elif _TRANSLATE_MARKER in prompt:
            text = self._handle_translation(prompt)
        elif _SUMMARY_MARKER in prompt:
            text = self._handle_summary(prompt)
        elif _DESCRIBE_MARKER in prompt:
            text = self._handle_description(prompt)
        else:
            text = (
                "I can help translate parallel code between CUDA and "
                "OpenMP. Please provide the source program."
            )
        return GenerationResult(
            text=text,
            model=self.name,
            prompt_tokens=prompt_tokens,
            completion_tokens=count_tokens(text),
        )

    # ------------------------------------------------------------------
    # Request handlers
    # ------------------------------------------------------------------
    def _handle_summary(self, prompt: str) -> str:
        lang = self.target_dialect.display_name
        return (
            f"Key points for writing {lang} code: use the canonical "
            f"data-parallel constructs, keep data resident on the device "
            f"across launches, guard index ranges, and map every array the "
            f"device touches. Atomic updates protect shared histogram bins; "
            f"reductions combine per-thread partials. Transfers dominate "
            f"when staged inside iteration loops, so hoist them out."
        )

    def _handle_description(self, prompt: str) -> str:
        code = prompt.split(":\n\n", 1)[-1]
        kernels = len(re.findall(r"__global__", code))
        pragmas = len(re.findall(r"#pragma omp target", code))
        loops = len(re.findall(r"\bfor \(", code))
        src = self.source_dialect.display_name
        parallel_bits = (
            f"{kernels} CUDA kernel(s)" if kernels else f"{pragmas} offloaded region(s)"
        )
        return (
            f"A {src} program that allocates its working arrays, initializes "
            f"them deterministically, performs its computation with "
            f"{parallel_bits} across {loops} loop(s), and prints checksum "
            f"lines for verification."
        )

    def _handle_translation(self, prompt: str) -> str:
        source = self._extract_translation_source(prompt)
        self._last_source = source
        return self._emit_generation(source)

    def _handle_correction(self, prompt: str) -> str:
        code, error = self._extract_correction_parts(prompt)
        if self._repair_lands(error):
            self.state += 1
        source = self._last_source
        if source is None:
            # Conversation started mid-stream (correction without a prior
            # translation): best effort — re-emit the quoted code.
            return f"```\n{code}\n```"
        return self._emit_generation(source)

    # ------------------------------------------------------------------
    # Generation machinery
    # ------------------------------------------------------------------
    def _emit_generation(self, source: str) -> str:
        try:
            translated = Transpiler(self.options).translate(
                source, self.source_dialect, self.target_dialect
            )
        except TranspileError:
            # Outside the competence envelope: emit the source with dialect
            # markers crudely swapped — it will not compile, which is the
            # honest failure mode of a weak model.
            translated = source
        code = self._apply_faults(translated)
        fence_lang = "cuda" if self.target_dialect is Dialect.CUDA else "cpp"
        chatter = _CHATTER[self.key]
        return f"{chatter}\n```{fence_lang}\n{code}```\n"

    def _apply_faults(self, code: str) -> str:
        plan = self.plan
        if plan.perf_fault is not None:
            out = get_fault(plan.perf_fault).apply(code)
            if out is not None:
                code = out
        if plan.outcome == "ok":
            if self.state >= plan.self_corrections:
                self._active_fault = None
                return code
            fault = self._planned_fault(self.state)
            if fault is not None:
                out = fault.apply(code)
                if out is not None:
                    self._active_fault = fault
                    return out
            # Planned fault does not fit this code shape: fall back to any
            # applicable non-perf fault so the planned behaviour class (one
            # correction round per planned fault) is preserved.
            for fallback in faults_for(self.target_dialect):
                if fallback.stage == "perf" or fallback.stage == "output":
                    continue
                out = fallback.apply(code)
                if out is not None:
                    self._active_fault = fallback
                    return out
            self._active_fault = None
            return code
        # N/A modes: persistently re-inject a fault of the terminal class.
        stage = {
            "na-compile": "compile",
            "na-runtime": "runtime",
            "na-output": "output",
        }[plan.outcome]
        fault = self._planned_fault(self.state, stage=stage)
        if fault is not None:
            out = fault.apply(code)
            if out is not None:
                return out
        for fallback in faults_for(self.target_dialect, stage):
            out = fallback.apply(code)
            if out is not None:
                return out
        return code

    def _planned_fault(self, index: int, stage: Optional[str] = None) -> Optional[Fault]:
        ids = self.plan.fault_ids
        if ids:
            fault = get_fault(ids[index % len(ids)])
            if stage is None or fault.stage == stage:
                return fault
        pool = faults_for(
            self.target_dialect,
            stage if stage is not None else None,
        )
        pool = [f for f in pool if f.stage != "perf"] if stage is None else pool
        if not pool:
            return None
        return pool[index % len(pool)]

    def _repair_lands(self, error: str) -> bool:
        """Does this correction round fix the active fault?"""
        plan = self.plan
        if plan.outcome != "ok":
            return False  # terminal fault class: the model never escapes it
        if self.state >= plan.self_corrections:
            return True  # already clean; nothing to do
        fault = getattr(self, "_active_fault", None) or self._planned_fault(self.state)
        if fault is None:
            return True
        signatures = fault.error_signature
        mentioned = not signatures or any(sig in error for sig in signatures)
        if not mentioned:
            return False
        if self.repair_probability >= 1.0:
            return True
        return self.rng.bernoulli(self.repair_probability)

    # ------------------------------------------------------------------
    # Prompt parsing
    # ------------------------------------------------------------------
    @staticmethod
    def _extract_translation_source(prompt: str) -> str:
        marker = "Avoid explanation of the code.: "
        pos = prompt.rfind(marker)
        if pos >= 0:
            return prompt[pos + len(marker):]
        # Fallback: everything after the final "Now," sentence's colon.
        pos = prompt.rfind("Now, ")
        if pos >= 0:
            colon = prompt.find(": ", pos)
            if colon >= 0:
                return prompt[colon + 2:]
        return prompt

    @staticmethod
    def _extract_correction_parts(prompt: str):
        split_marker = "\n-- The above code was"
        pos = prompt.find(split_marker)
        code = prompt[:pos] if pos >= 0 else ""
        error = ""
        for kind in ("compile error: ", "execution error: "):
            epos = prompt.find(kind)
            if epos >= 0:
                tail = prompt[epos + len(kind):]
                end = tail.rfind(". Re-factor the above code")
                error = tail[:end] if end >= 0 else tail
                break
        return code, error
