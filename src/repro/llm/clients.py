"""Live-backend adapters: Ollama-style local REST and OpenAI-style chat API.

The paper hosts Codestral / Wizard Coder / DeepSeek Coder through a local
Ollama deployment and reaches GPT-4 through a private API instance (§V).
These adapters speak those wire formats through an injectable ``transport``
callable (``transport(url, payload_dict) -> response_dict``), so they are
fully testable offline and swappable for ``urllib``-based transports in a
networked deployment.
"""

from __future__ import annotations

import json
from typing import Callable, Dict, List, Optional

from repro.errors import TransportError
from repro.llm.base import ChatMessage, GenerationResult, LLMClient

Transport = Callable[[str, Dict], Dict]


def urllib_transport(url: str, payload: Dict) -> Dict:  # pragma: no cover
    """Default transport for networked deployments (unused offline)."""
    import urllib.request

    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(req, timeout=600) as resp:
            return json.loads(resp.read().decode("utf-8"))
    except Exception as exc:  # noqa: BLE001 - network edge
        raise TransportError(f"request to {url} failed: {exc}") from exc


class OllamaClient(LLMClient):
    """Client for an Ollama ``/api/chat`` endpoint."""

    def __init__(
        self,
        model: str,
        context_length: int,
        base_url: str = "http://localhost:11434",
        transport: Optional[Transport] = None,
        temperature: float = 0.0,
    ) -> None:
        self.name = model
        self.context_length = context_length
        self.base_url = base_url.rstrip("/")
        self.transport = transport or urllib_transport
        self.temperature = temperature

    def chat(self, messages: List[ChatMessage]) -> GenerationResult:
        payload = {
            "model": self.name,
            "messages": [{"role": m.role, "content": m.content} for m in messages],
            "stream": False,
            "options": {"temperature": self.temperature},
        }
        data = self.transport(f"{self.base_url}/api/chat", payload)
        try:
            text = data["message"]["content"]
        except (KeyError, TypeError) as exc:
            raise TransportError(
                f"malformed Ollama response: {data!r}"
            ) from exc
        return GenerationResult(
            text=text,
            model=self.name,
            prompt_tokens=int(data.get("prompt_eval_count", 0) or 0),
            completion_tokens=int(data.get("eval_count", 0) or 0),
        )


class OpenAIChatClient(LLMClient):
    """Client for an OpenAI-compatible ``/v1/chat/completions`` endpoint."""

    def __init__(
        self,
        model: str,
        context_length: int,
        base_url: str = "https://api.openai.com",
        api_key: str = "",
        transport: Optional[Transport] = None,
        temperature: float = 0.0,
    ) -> None:
        self.name = model
        self.context_length = context_length
        self.base_url = base_url.rstrip("/")
        self.api_key = api_key
        self.transport = transport or urllib_transport
        self.temperature = temperature

    def chat(self, messages: List[ChatMessage]) -> GenerationResult:
        payload = {
            "model": self.name,
            "messages": [{"role": m.role, "content": m.content} for m in messages],
            "temperature": self.temperature,
        }
        data = self.transport(
            f"{self.base_url}/v1/chat/completions", payload
        )
        try:
            text = data["choices"][0]["message"]["content"]
        except (KeyError, IndexError, TypeError) as exc:
            raise TransportError(
                f"malformed chat-completions response: {data!r}"
            ) from exc
        usage = data.get("usage", {}) or {}
        return GenerationResult(
            text=text,
            model=self.name,
            prompt_tokens=int(usage.get("prompt_tokens", 0) or 0),
            completion_tokens=int(usage.get("completion_tokens", 0) or 0),
        )
