"""The four-LLM registry of the paper's Table V."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.errors import UnknownModelError


@dataclass(frozen=True)
class LLMSpec:
    """One row of Table V."""

    name: str
    #: Human-readable parameter count, exactly as the paper prints it.
    parameters: str
    #: Model download size in GB; None for API-only access.
    size_gb: Optional[float]
    #: Quantization, as printed ("8-bit", "F16", "N/A").
    quantization: str
    #: Context window (tokens).
    context_length: int
    #: How the paper hosted it ("api" for GPT-4, "ollama" otherwise).
    hosting: str
    #: Short key used in table headers and scenario plans.
    key: str


_MODELS: List[LLMSpec] = [
    LLMSpec(
        name="GPT-4",
        parameters="1.76 T",
        size_gb=None,
        quantization="N/A",
        context_length=32768,
        hosting="api",
        key="gpt4",
    ),
    LLMSpec(
        name="Codestral",
        parameters="22B",
        size_gb=24.0,
        quantization="8-bit",
        context_length=32768,
        hosting="ollama",
        key="codestral",
    ),
    LLMSpec(
        name="Wizard Coder",
        parameters="33B",
        size_gb=35.0,
        quantization="8-bit",
        context_length=16384,
        hosting="ollama",
        key="wizardcoder",
    ),
    LLMSpec(
        name="DeepSeek Coder v2",
        parameters="16B",
        size_gb=31.0,
        quantization="F16",
        context_length=163840,
        hosting="ollama",
        key="deepseek",
    ),
]

_BY_KEY: Dict[str, LLMSpec] = {m.key: m for m in _MODELS}
_BY_NAME: Dict[str, LLMSpec] = {m.name: m for m in _MODELS}


def all_models() -> List[LLMSpec]:
    """Table V rows, in paper order."""
    return list(_MODELS)


def model_keys() -> List[str]:
    return [m.key for m in _MODELS]


def get_model(key_or_name: str) -> LLMSpec:
    spec = _BY_KEY.get(key_or_name) or _BY_NAME.get(key_or_name)
    if spec is None:
        known = ", ".join(sorted(_BY_KEY))
        raise UnknownModelError(
            f"unknown model {key_or_name!r}; known keys: {known}"
        )
    return spec


#: The paper's lower-bound context window (Wizard Coder) constrains how much
#: language knowledge LASSI packs into prompts (§III-B).
MIN_CONTEXT_LENGTH = min(m.context_length for m in _MODELS)
