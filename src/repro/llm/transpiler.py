"""Rule-based bi-directional CUDA <-> OpenMP-offload transpiler.

This is the "competence" inside :class:`repro.llm.simulated.SimulatedLLM`:
a genuine source-to-source translator over the mini-language, built from the
same patterns an LLM applies when translating HeCBench codes —

* OpenMP -> CUDA: ``target teams distribute parallel for`` loops become
  ``__global__`` kernels with a guarded thread-index body; map clauses and
  data regions become ``cudaMalloc``/``cudaMemcpy`` staging (hoisted out of
  loops, the way competent translations in the paper behave); reductions
  become atomicAdd accumulator buffers.
* CUDA -> OpenMP: kernels matching the canonical ``int i = blockIdx.x *
  blockDim.x + threadIdx.x; if (i < n) {...}`` shape are folded back into
  parallel loops; staging collapses into a ``target data`` region (smart
  style) or per-loop map clauses (literal style); single-cell atomicAdd
  accumulators are recognized and rewritten as ``reduction(+:)`` scalars.

:class:`TranspileOptions` carries the per-model style knobs (naming, block
size, data-region usage, loop-invariant hoisting, reduction strategy,
formatting) that make different "LLMs" produce visibly different — yet
equivalent — translations, which is what spreads the paper's Sim-T/Sim-L
similarity and runtime-Ratio metrics across models.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import ReproError
from repro.llm.analysis import (
    collect_identifiers,
    declared_names,
    pointer_access_kinds,
    substitute,
)
from repro.minilang import ast
from repro.minilang import types as ty
from repro.minilang.builtins import BUILTINS, CONSTANTS, GEOMETRY_BUILTINS
from repro.minilang.codegen import CodegenStyle, generate
from repro.minilang.parser import parse
from repro.minilang.source import Dialect, SourceFile


class TranspileError(ReproError):
    """The source is outside the transpiler's supported pattern set."""


@dataclass(frozen=True)
class TranspileOptions:
    """Style knobs; each simulated model carries its own combination."""

    #: Prefix for synthesized device pointers in OMP->CUDA output.
    device_prefix: str = "d_"
    #: Kernel naming scheme: "{stem}_kernel", "kernel_{i}", "k_{stem}".
    kernel_name_template: str = "{stem}_kernel"
    #: Thread-block size used for generated launches.
    block_size: int = 256
    #: CUDA->OMP: wrap device phase in one `target data` region instead of
    #: per-loop map clauses.  OMP->CUDA: hoist staging out of loops.
    use_data_region: bool = True
    #: Hoist a loop whose body is loop-invariant (idempotent re-launch) out
    #: of its repetition loop.  Mirrors LLM translations that drop
    #: benchmark-timing repetitions.
    hoist_invariant_repeat: bool = False
    #: CUDA->OMP handling of single-cell atomic accumulators:
    #: "reduction" rewrites to a reduction(+:) scalar, "atomic" keeps
    #: `#pragma omp atomic`.
    reduction_style: str = "reduction"
    #: Name used for generated flat loop indices.
    loop_var: str = "i"
    #: Emit num_threads(block_size) on generated OMP loop pragmas.
    emit_num_threads: bool = False
    #: CUDA->OMP: privatize array atomics — each device iteration handles a
    #: chunk with a local histogram merged with few atomics.  Mirrors the
    #: paper's §V-D DeepSeek/atomicCost anecdote ("fewer atomic operations",
    #: large speedup with identical output).
    privatize_atomics: bool = False
    #: Chunk length used by the privatized-atomics rewrite.
    privatize_chunk: int = 64
    #: Systematic identifier renaming ("suffix" | "verbose" | None).  Models
    #: with a renaming scheme produce structurally identical but lexically
    #: divergent code — the dominant driver of low Sim-T/Sim-L scores.
    rename_scheme: Optional[str] = None
    #: C89-style restructuring: hoist top-level declarations of each host
    #: function to the top of the body, leaving assignments in place.  A
    #: common LLM "house style" that lowers similarity without changing
    #: semantics.
    hoist_decls: bool = False
    #: Code formatting.
    codegen: CodegenStyle = field(default_factory=CodegenStyle)


def _deep(node):
    return copy.deepcopy(node)


def _int_lit(v: int) -> ast.IntLit:
    return ast.IntLit(value=v, text=str(v))


def _ident(name: str) -> ast.Ident:
    return ast.Ident(name=name)


def _mul(a: ast.Expr, b: ast.Expr) -> ast.Expr:
    return ast.Binary(op="*", left=a, right=b)


def _sizeof(t: ty.Type) -> ast.SizeOf:
    return ast.SizeOf(type=ty.Type(t.kind, 0))


def _call(name: str, *args: ast.Expr) -> ast.Call:
    return ast.Call(callee=name, args=list(args))


def _expr_stmt(e: ast.Expr) -> ast.ExprStmt:
    return ast.ExprStmt(expr=e)


def _var_types(fn: ast.FuncDef) -> Dict[str, ty.Type]:
    out: Dict[str, ty.Type] = {}
    for p in fn.params:
        if p.name:
            out[p.name] = p.type
    for s in ast.walk_stmts(fn.body):
        if isinstance(s, ast.VarDecl):
            t = s.type.pointer_to() if s.array_size is not None else s.type
            out[s.name] = t
    return out


def _parse_source(text: str, dialect: Dialect) -> ast.Program:
    program, diags = parse(SourceFile("input", text, dialect))
    if diags.has_errors:
        raise TranspileError(
            "source program does not parse:\n" + diags.render()
        )
    return program


@dataclass
class _CanonicalLoop:
    var: str
    start: ast.Expr
    bound: ast.Expr
    body: ast.Stmt
    inner: Optional["_CanonicalLoop"] = None


def _canonical(loop: ast.For) -> Optional[_CanonicalLoop]:
    """Match ``for (int v = start; v < bound; v++)``."""
    init = loop.init
    if not (isinstance(init, ast.VarDecl) and init.init is not None):
        return None
    var = init.name
    cond = loop.cond
    if not (
        isinstance(cond, ast.Binary)
        and cond.op == "<"
        and isinstance(cond.left, ast.Ident)
        and cond.left.name == var
    ):
        return None
    step = loop.step
    unit = (
        isinstance(step, (ast.Postfix, ast.Unary))
        and step.op == "++"
        and isinstance(step.operand, ast.Ident)
        and step.operand.name == var
    ) or (
        isinstance(step, ast.Assign)
        and step.op == "+="
        and isinstance(step.target, ast.Ident)
        and step.target.name == var
        and isinstance(step.value, ast.IntLit)
        and step.value.value == 1
    )
    if not unit:
        return None
    return _CanonicalLoop(var=var, start=init.init, bound=cond.right, body=loop.body)


# =====================================================================
# OMP -> CUDA
# =====================================================================


@dataclass
class _ArrayRecord:
    name: str
    elem: ty.Type
    length: Optional[ast.Expr]
    to: bool = False
    frm: bool = False

    @property
    def device_needed(self) -> bool:
        return True


class _Omp2Cuda:
    def __init__(self, program: ast.Program, options: TranspileOptions) -> None:
        self.src = program
        self.opt = options
        self.kernels: List[ast.FuncDef] = []
        self.kernel_count = 0

    # ------------------------------------------------------------------
    def run(self) -> ast.Program:
        out = ast.Program()
        for gv in self.src.globals:
            out.globals.append(_deep(gv))
        for fn in self.src.functions:
            new_fn = self._transform_function(fn)
            out.functions.append(new_fn)
        # Kernels go first, C-style.
        out.functions = self.kernels + out.functions
        return out

    # ------------------------------------------------------------------
    def _transform_function(self, fn: ast.FuncDef) -> ast.FuncDef:
        self.var_types = _var_types(fn)
        body = fn.body

        # Phase A: find device arrays (from map clauses anywhere within).
        records: Dict[str, _ArrayRecord] = {}
        has_device = False
        for stmt in ast.walk_stmts(body):
            if isinstance(stmt, ast.Pragma) and stmt.pragma.is_target:
                has_device = True
                for mc in stmt.pragma.maps:
                    t = self.var_types.get(mc.name)
                    if t is None or not t.is_pointer or mc.length is None:
                        continue
                    rec = records.get(mc.name)
                    if rec is None:
                        rec = _ArrayRecord(
                            name=mc.name, elem=t.pointee(), length=_deep(mc.length)
                        )
                        records[mc.name] = rec
                    if mc.kind in ("to", "tofrom"):
                        rec.to = True
                    if mc.kind in ("from", "tofrom"):
                        rec.frm = True
        if not has_device:
            return _deep(fn)
        # Arrays touched inside device loops without explicit maps (data
        # region case covers them; keep union of kinds from access analysis).
        for stmt in ast.walk_stmts(body):
            if isinstance(stmt, ast.Pragma) and stmt.pragma.is_target and (
                stmt.body is not None
            ):
                for name, acc in pointer_access_kinds(stmt.body).items():
                    t = self.var_types.get(name)
                    if t is None or not t.is_pointer:
                        continue
                    rec = records.get(name)
                    if rec is None:
                        continue  # length unknown: must come from a map
                    if acc.read:
                        rec.to = True
                    if acc.written:
                        rec.frm = True

        self.records = records
        self.rename = {name: self.opt.device_prefix + name for name in records}
        self.fn_stem = fn.name

        new_body = ast.Block()
        top = list(body.stmts)
        first, last = self._device_span(top)
        for i, stmt in enumerate(top):
            if i == first:
                new_body.stmts.extend(self._staging_prologue())
            if first <= i <= last:
                new_body.stmts.extend(self._transform_stmt(stmt))
            else:
                new_body.stmts.append(_deep(stmt))
            if i == last:
                new_body.stmts.extend(self._staging_epilogue())
        return ast.FuncDef(
            return_type=fn.return_type,
            name=fn.name,
            params=[_deep(p) for p in fn.params],
            body=new_body,
            qualifier=None,
        )

    def _device_span(self, top: List[ast.Stmt]) -> Tuple[int, int]:
        first = last = -1
        for i, stmt in enumerate(top):
            uses = any(
                isinstance(s, ast.Pragma) and s.pragma.is_target
                for s in ast.walk_stmts(stmt)
            )
            if uses:
                if first == -1:
                    first = i
                last = i
        if first == -1:
            raise TranspileError("no target construct found")
        return first, last

    def _staging_prologue(self) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        for rec in self.records.values():
            dname = self.rename[rec.name]
            decl = ast.VarDecl(type=rec.elem.pointer_to(), name=dname)
            out.append(decl)
            size = _mul(_deep(rec.length), _sizeof(rec.elem))
            out.append(_expr_stmt(_call(
                "cudaMalloc",
                ast.Unary(op="&", operand=_ident(dname)),
                size,
            )))
            if rec.to:
                out.append(_expr_stmt(_call(
                    "cudaMemcpy",
                    _ident(dname),
                    _ident(rec.name),
                    _mul(_deep(rec.length), _sizeof(rec.elem)),
                    _ident("cudaMemcpyHostToDevice"),
                )))
        return out

    def _staging_epilogue(self) -> List[ast.Stmt]:
        out: List[ast.Stmt] = []
        for rec in self.records.values():
            dname = self.rename[rec.name]
            if rec.frm:
                out.append(_expr_stmt(_call(
                    "cudaMemcpy",
                    _ident(rec.name),
                    _ident(dname),
                    _mul(_deep(rec.length), _sizeof(rec.elem)),
                    _ident("cudaMemcpyDeviceToHost"),
                )))
        out.append(_expr_stmt(_call("cudaDeviceSynchronize")))
        for rec in self.records.values():
            out.append(_expr_stmt(_call("cudaFree", _ident(self.rename[rec.name]))))
        return out

    # ------------------------------------------------------------------
    def _transform_stmt(self, stmt: ast.Stmt) -> List[ast.Stmt]:
        if isinstance(stmt, ast.Pragma):
            pragma = stmt.pragma
            if pragma.directive == "target data":
                inner: List[ast.Stmt] = []
                body = stmt.body
                stmts = body.stmts if isinstance(body, ast.Block) else [body]
                for s in stmts:
                    inner.extend(self._transform_stmt(s))
                return inner
            if pragma.is_target and pragma.is_loop and isinstance(stmt.body, ast.For):
                return self._emit_launch(pragma, stmt.body)
            if pragma.is_target:
                raise TranspileError(
                    f"unsupported target construct '{pragma.directive}'"
                )
            # Host pragma: drop the pragma, keep the statement.
            return [_deep(stmt.body)] if stmt.body is not None else []
        if isinstance(stmt, ast.Block):
            blk = ast.Block()
            for s in stmt.stmts:
                blk.stmts.extend(self._transform_stmt(s))
            return [blk]
        if isinstance(stmt, (ast.For, ast.While, ast.DoWhile)):
            new = _deep(stmt)
            body_stmts = self._transform_stmt(new.body)
            new.body = body_stmts[0] if len(body_stmts) == 1 else ast.Block(
                stmts=body_stmts
            )
            # Device-phase host statements reference device pointers.
            if isinstance(new, ast.For) and new.init is not None:
                substitute(new.init, self.rename)
            if new.cond is not None:
                substitute(new.cond, self.rename)
            if isinstance(new, ast.For) and new.step is not None:
                substitute(new.step, self.rename)
            return [new]
        if isinstance(stmt, ast.If):
            new = _deep(stmt)
            substitute(new, self.rename)
            return [new]
        # Plain host statement inside the device phase: pointer swaps and
        # friends must act on the device pointers.
        new = _deep(stmt)
        substitute(new, self.rename)
        return [new]

    # ------------------------------------------------------------------
    def _emit_launch(self, pragma: ast.OmpPragma, loop: ast.For) -> List[ast.Stmt]:
        canon = _canonical(loop)
        if canon is None:
            raise TranspileError("loop after target directive is not canonical")
        inner = None
        if pragma.collapse >= 2:
            inner_for = self._sole_for(canon.body)
            if inner_for is None:
                raise TranspileError("collapse(2) without a perfect nest")
            inner = _canonical(inner_for)
            if inner is None:
                raise TranspileError("inner collapsed loop is not canonical")
            canon.inner = inner

        body = _deep(canon.inner.body if canon.inner else canon.body)

        # Reduction handling: rewrite `s += e;` into atomicAdd on a buffer.
        reduction_names: List[str] = []
        red_types: Dict[str, ty.Type] = {}
        if pragma.reduction is not None:
            if pragma.reduction.op != "+":
                raise TranspileError(
                    f"unsupported reduction operator '{pragma.reduction.op}'"
                )
            reduction_names = list(pragma.reduction.names)
            for rname in reduction_names:
                red_types[rname] = self.var_types.get(rname, ty.DOUBLE)
            body = self._rewrite_reduction_body(body, reduction_names)

        # `#pragma omp atomic` -> atomicAdd
        body = self._rewrite_atomics(body)

        # Parameters: free identifiers minus locals/builtins/loop vars.
        free = collect_identifiers(body)
        for e in ([canon.bound, canon.start] + (
            [canon.inner.bound, canon.inner.start] if canon.inner else []
        )):
            free |= collect_identifiers(e)
        local = declared_names(body)
        loop_vars = {canon.var} | ({canon.inner.var} if canon.inner else set())
        params: List[str] = []
        for name in sorted(free):
            if name in local or name in loop_vars:
                continue
            if name in BUILTINS or name in CONSTANTS or name in GEOMETRY_BUILTINS:
                continue
            if self.src.function(name) is not None:
                continue
            if name in self.var_types:
                params.append(name)

        kname = self._kernel_name()
        kparams = []
        args: List[ast.Expr] = []
        for name in params:
            t = self.var_types[name]
            kparams.append(ast.Param(type=t, name=name))
            if name in self.rename:
                args.append(_ident(self.rename[name]))
            else:
                args.append(_ident(name))
        # Reduction buffers become extra pointer params.
        red_buf_names: Dict[str, str] = {}
        for rname in reduction_names:
            buf_param = rname + "_sum"
            red_buf_names[rname] = buf_param
            kparams.append(ast.Param(type=red_types[rname].pointer_to(), name=buf_param))

        # Kernel body: flat index + guard.
        lv = self.opt.loop_var
        kbody = ast.Block()
        idx_expr = ast.Binary(
            op="+",
            left=_mul(
                ast.Member(obj=_ident("blockIdx"), field_name="x"),
                ast.Member(obj=_ident("blockDim"), field_name="x"),
            ),
            right=ast.Member(obj=_ident("threadIdx"), field_name="x"),
        )
        if canon.inner is None:
            start_is_zero = isinstance(canon.start, ast.IntLit) and canon.start.value == 0
            if not start_is_zero:
                idx_expr = ast.Binary(op="+", left=idx_expr, right=_deep(canon.start))
            kbody.stmts.append(ast.VarDecl(type=ty.INT, name=lv, init=idx_expr))
            guard = ast.Binary(op="<", left=_ident(lv), right=_deep(canon.bound))
            mapping = {canon.var: lv}
            substitute(body, mapping)
            sub_body = body if isinstance(body, ast.Block) else ast.Block(stmts=[body])
            kbody.stmts.append(ast.If(cond=guard, then=sub_body))
            total_expr: ast.Expr = (
                _deep(canon.bound)
                if start_is_zero
                else ast.Binary(op="-", left=_deep(canon.bound), right=_deep(canon.start))
            )
        else:
            kbody.stmts.append(ast.VarDecl(type=ty.INT, name=lv, init=idx_expr))
            n2 = _deep(canon.inner.bound)
            kbody.stmts.append(ast.VarDecl(
                type=ty.INT, name=canon.var,
                init=ast.Binary(op="/", left=_ident(lv), right=_deep(n2)),
            ))
            kbody.stmts.append(ast.VarDecl(
                type=ty.INT, name=canon.inner.var,
                init=ast.Binary(op="%", left=_ident(lv), right=_deep(n2)),
            ))
            total_expr = _mul(_deep(canon.bound), _deep(canon.inner.bound))
            guard = ast.Binary(op="<", left=_ident(lv), right=_deep(total_expr))
            sub_body = body if isinstance(body, ast.Block) else ast.Block(stmts=[body])
            kbody.stmts.append(ast.If(cond=guard, then=sub_body))

        kernel = ast.FuncDef(
            return_type=ty.VOID, name=kname, params=kparams, body=kbody,
            qualifier="__global__",
        )
        self.kernels.append(kernel)

        # Launch site (+ reduction staging).
        out: List[ast.Stmt] = []
        block = _int_lit(self.opt.block_size)
        grid = ast.Binary(
            op="/",
            left=ast.Binary(
                op="+", left=_deep(total_expr),
                right=_int_lit(self.opt.block_size - 1),
            ),
            right=_int_lit(self.opt.block_size),
        )
        launch_args = list(args)
        for rname in reduction_names:
            rtype = red_types[rname]
            dbuf = self.opt.device_prefix + rname + "_sum"
            out.append(ast.VarDecl(type=rtype.pointer_to(), name=dbuf))
            out.append(_expr_stmt(_call(
                "cudaMalloc", ast.Unary(op="&", operand=_ident(dbuf)), _sizeof(rtype)
            )))
            out.append(_expr_stmt(_call(
                "cudaMemset", _ident(dbuf), _int_lit(0), _sizeof(rtype)
            )))
            launch_args.append(_ident(dbuf))
        out.append(_expr_stmt(ast.Launch(
            kernel=kname, grid=grid, block=block, args=launch_args
        )))
        for rname in reduction_names:
            rtype = red_types[rname]
            dbuf = self.opt.device_prefix + rname + "_sum"
            hbuf = rname + "_host"
            out.append(ast.VarDecl(
                type=rtype.pointer_to(), name=hbuf,
                init=ast.Cast(
                    type=rtype.pointer_to(),
                    operand=_call("malloc", _sizeof(rtype)),
                ),
            ))
            out.append(_expr_stmt(_call(
                "cudaMemcpy", _ident(hbuf), _ident(dbuf), _sizeof(rtype),
                _ident("cudaMemcpyDeviceToHost"),
            )))
            out.append(_expr_stmt(ast.Assign(
                op="+=", target=_ident(rname),
                value=ast.Index(base=_ident(hbuf), index=_int_lit(0)),
            )))
            out.append(_expr_stmt(_call("cudaFree", _ident(dbuf))))
            out.append(_expr_stmt(_call("free", _ident(hbuf))))
        return out

    def _sole_for(self, body: ast.Stmt) -> Optional[ast.For]:
        if isinstance(body, ast.For):
            return body
        if isinstance(body, ast.Block) and len(body.stmts) == 1 and isinstance(
            body.stmts[0], ast.For
        ):
            return body.stmts[0]
        return None

    def _rewrite_reduction_body(self, body: ast.Stmt, names: List[str]) -> ast.Stmt:
        """Turn ``s += e;`` into ``atomicAdd(&s_sum[0], e);``."""
        wrapper = body if isinstance(body, ast.Block) else ast.Block(stmts=[body])

        def rewrite_block(block: ast.Block) -> None:
            for i, s in enumerate(block.stmts):
                if (
                    isinstance(s, ast.ExprStmt)
                    and isinstance(s.expr, ast.Assign)
                    and isinstance(s.expr.target, ast.Ident)
                    and s.expr.target.name in names
                ):
                    rname = s.expr.target.name
                    if s.expr.op == "+=":
                        value = s.expr.value
                    elif s.expr.op == "=" and (
                        isinstance(s.expr.value, ast.Binary)
                        and s.expr.value.op == "+"
                        and isinstance(s.expr.value.left, ast.Ident)
                        and s.expr.value.left.name == rname
                    ):
                        value = s.expr.value.right
                    else:
                        raise TranspileError(
                            f"reduction variable '{rname}' updated in an "
                            f"unsupported way"
                        )
                    block.stmts[i] = _expr_stmt(_call(
                        "atomicAdd",
                        ast.Unary(op="&", operand=ast.Index(
                            base=_ident(rname + "_sum"), index=_int_lit(0)
                        )),
                        value,
                    ))
                elif isinstance(s, ast.Block):
                    rewrite_block(s)
                elif isinstance(s, ast.If):
                    for part in (s.then, s.other):
                        if isinstance(part, ast.Block):
                            rewrite_block(part)
                elif isinstance(s, (ast.For, ast.While, ast.DoWhile)):
                    if isinstance(s.body, ast.Block):
                        rewrite_block(s.body)
        rewrite_block(wrapper)
        return wrapper

    def _rewrite_atomics(self, body: ast.Stmt) -> ast.Stmt:
        """Turn ``#pragma omp atomic`` + update into a CUDA atomic call."""
        wrapper = body if isinstance(body, ast.Block) else ast.Block(stmts=[body])

        def rewrite_block(block: ast.Block) -> None:
            for i, s in enumerate(block.stmts):
                if isinstance(s, ast.Pragma) and s.pragma.directive == "atomic":
                    upd = s.body
                    if not (
                        isinstance(upd, ast.ExprStmt)
                        and isinstance(upd.expr, ast.Assign)
                        and upd.expr.op in ("+=", "-=")
                        and isinstance(upd.expr.target, ast.Index)
                    ):
                        raise TranspileError("unsupported atomic update form")
                    fn = "atomicAdd" if upd.expr.op == "+=" else "atomicSub"
                    block.stmts[i] = _expr_stmt(_call(
                        fn,
                        ast.Unary(op="&", operand=_deep(upd.expr.target)),
                        _deep(upd.expr.value),
                    ))
                elif isinstance(s, ast.Block):
                    rewrite_block(s)
                elif isinstance(s, ast.If):
                    for part in (s.then, s.other):
                        if isinstance(part, ast.Block):
                            rewrite_block(part)
                elif isinstance(s, (ast.For, ast.While, ast.DoWhile)):
                    if isinstance(s.body, ast.Block):
                        rewrite_block(s.body)
        rewrite_block(wrapper)
        return wrapper

    def _kernel_name(self) -> str:
        name = self.opt.kernel_name_template.format(
            stem=self.fn_stem if self.fn_stem != "main" else "compute",
            i=self.kernel_count,
        )
        if self.kernel_count and "{i}" not in self.opt.kernel_name_template:
            name = f"{name}{self.kernel_count + 1}"
        self.kernel_count += 1
        return name


# =====================================================================
# CUDA -> OMP
# =====================================================================


@dataclass
class _DeviceBuf:
    dname: str
    elem: ty.Type
    bytes_expr: ast.Expr
    host_alias: Optional[str] = None
    synth_name: Optional[str] = None
    h2d: bool = False
    d2h: bool = False
    written: bool = False
    read: bool = False
    #: single-cell accumulator recognized for reduction rewriting
    reduction_scalar: Optional[str] = None

    @property
    def host_name(self) -> str:
        return self.host_alias or self.synth_name or self.dname

    def length_expr(self) -> ast.Expr:
        """Element count from the byte-size expression."""
        e = self.bytes_expr
        if isinstance(e, ast.Binary) and e.op == "*":
            if isinstance(e.right, ast.SizeOf):
                return _deep(e.left)
            if isinstance(e.left, ast.SizeOf):
                return _deep(e.right)
        if isinstance(e, ast.SizeOf):
            return _int_lit(1)
        return ast.Binary(op="/", left=_deep(e), right=_sizeof(self.elem))

    @property
    def map_kind(self) -> str:
        to = self.h2d or (self.read and not self.h2d and self.host_alias is not None)
        frm = self.d2h
        if to and frm:
            return "tofrom"
        if frm:
            return "from"
        if to:
            return "to"
        return "alloc"


class _Cuda2Omp:
    def __init__(self, program: ast.Program, options: TranspileOptions) -> None:
        self.src = program
        self.opt = options
        self.kernels = {f.name: f for f in program.functions if f.is_kernel}
        self.device_fns = {
            f.name: f for f in program.functions if f.is_device
        }

    def run(self) -> ast.Program:
        out = ast.Program()
        for gv in self.src.globals:
            out.globals.append(_deep(gv))
        for fn in self.src.functions:
            if fn.is_kernel or fn.is_device:
                if fn.is_device:
                    plain = _deep(fn)
                    plain.qualifier = None
                    out.functions.append(plain)
                continue
            out.functions.append(self._transform_function(fn))
        return out

    # ------------------------------------------------------------------
    def _transform_function(self, fn: ast.FuncDef) -> ast.FuncDef:
        self.var_types = _var_types(fn)
        body = fn.body
        self.bufs: Dict[str, _DeviceBuf] = {}
        self._collect_buffers(body)
        if not self.bufs:
            return _deep(fn)
        self._fix_aliases(body)
        self._analyze_kernel_accesses(body)
        self._detect_reduction_buffers(body)
        self._build_names(fn)

        top = list(body.stmts)
        first, last = self._device_span(top)
        new_stmts: List[ast.Stmt] = []
        device_stmts: List[ast.Stmt] = []
        for i, stmt in enumerate(top):
            if i < first or i > last:
                transformed = self._transform_host_stmt(stmt, in_device_phase=False)
                new_stmts.extend(transformed)
            else:
                device_stmts.extend(
                    self._transform_host_stmt(stmt, in_device_phase=True)
                )
            if i == last:
                new_stmts.extend(self._wrap_device_phase(device_stmts))
        new_body = ast.Block(stmts=new_stmts)
        return ast.FuncDef(
            return_type=fn.return_type, name=fn.name,
            params=[_deep(p) for p in fn.params], body=new_body, qualifier=None,
        )

    # -- phase A -----------------------------------------------------------
    def _collect_buffers(self, body: ast.Block) -> None:
        for stmt in ast.walk_stmts(body):
            if not isinstance(stmt, ast.ExprStmt):
                continue
            e = stmt.expr
            if isinstance(e, ast.Call) and e.callee == "cudaMalloc" and len(e.args) == 2:
                target = e.args[0]
                if isinstance(target, ast.Cast):
                    target = target.operand
                if isinstance(target, ast.Unary) and target.op == "&" and isinstance(
                    target.operand, ast.Ident
                ):
                    dname = target.operand.name
                    t = self.var_types.get(dname)
                    if t is None or not t.is_pointer:
                        raise TranspileError(
                            f"cudaMalloc target '{dname}' has no pointer type"
                        )
                    self.bufs[dname] = _DeviceBuf(
                        dname=dname, elem=t.pointee(), bytes_expr=_deep(e.args[1])
                    )
        for stmt in ast.walk_stmts(body):
            if not isinstance(stmt, ast.ExprStmt):
                continue
            e = stmt.expr
            if isinstance(e, ast.Call) and e.callee == "cudaMemcpy" and len(e.args) == 4:
                dst, src, _, kind = e.args
                kname = kind.name if isinstance(kind, ast.Ident) else ""
                if kname == "cudaMemcpyHostToDevice" and isinstance(dst, ast.Ident):
                    buf = self.bufs.get(dst.name)
                    if buf is not None:
                        buf.h2d = True
                        if isinstance(src, ast.Ident) and buf.host_alias is None:
                            buf.host_alias = src.name
                elif kname == "cudaMemcpyDeviceToHost" and isinstance(src, ast.Ident):
                    buf = self.bufs.get(src.name)
                    if buf is not None:
                        buf.d2h = True
                        if isinstance(dst, ast.Ident) and buf.host_alias is None:
                            buf.host_alias = dst.name

    def _fix_aliases(self, body: ast.Block) -> None:
        """Validate host aliases and widen map kinds for swapped pointers.

        * A host array can alias at most one device buffer, and must be
          declared before the device phase begins (otherwise the ``target
          data`` map clause would reference an undeclared name) — late or
          duplicate partners get synthesized host arrays instead.
        * Device pointer variables that are *reassigned* (the ping-pong swap
          idiom) must be mapped ``tofrom``: the final results may live in
          either physical buffer, so both need copy-back.
        """
        decl_pos: Dict[str, int] = {}
        span_start = None
        for i, s in enumerate(ast.walk_stmts(body)):
            if isinstance(s, ast.VarDecl) and s.name not in decl_pos:
                decl_pos[s.name] = i
            if span_start is None:
                for e in ast.walk_exprs(s) if isinstance(
                    s, (ast.ExprStmt, ast.VarDecl, ast.If, ast.For, ast.While,
                        ast.DoWhile, ast.Return)
                ) else []:
                    if isinstance(e, ast.Launch) or (
                        isinstance(e, ast.Call) and e.callee == "cudaMemset"
                    ):
                        span_start = i
                        break
        claimed: Set[str] = set()
        for buf in self.bufs.values():
            alias = buf.host_alias
            if alias is None:
                continue
            pos = decl_pos.get(alias)
            late = pos is not None and span_start is not None and pos >= span_start
            if alias in claimed or late:
                buf.host_alias = None
            else:
                claimed.add(alias)
        # Swap idiom: any assignment to a device-pointer variable.
        reassigned: Set[str] = set()
        for s in ast.walk_stmts(body):
            for e in ast.walk_exprs(s):
                if isinstance(e, ast.Assign) and isinstance(e.target, ast.Ident) and (
                    e.target.name in self.bufs
                ):
                    reassigned.add(e.target.name)
                    if isinstance(e.value, ast.Ident) and e.value.name in self.bufs:
                        reassigned.add(e.value.name)
        for name in reassigned:
            buf = self.bufs[name]
            buf.h2d = True
            buf.d2h = True

    def _analyze_kernel_accesses(self, body: ast.Block) -> None:
        # Track pointer-swap aliasing: a swapped pair shares access kinds.
        alias_groups: Dict[str, Set[str]] = {}
        for stmt in ast.walk_stmts(body):
            for e in ast.walk_exprs(stmt) if not isinstance(stmt, ast.Pragma) else []:
                if isinstance(e, ast.Launch):
                    kernel = self.kernels.get(e.kernel)
                    if kernel is None:
                        continue
                    acc = pointer_access_kinds(kernel.body)
                    for param, arg in zip(kernel.params, e.args):
                        if isinstance(arg, ast.Ident) and arg.name in self.bufs:
                            info = acc.get(param.name)
                            if info is None:
                                continue
                            buf = self.bufs[arg.name]
                            buf.read = buf.read or info.read
                            buf.written = buf.written or info.written

    def _detect_reduction_buffers(self, body: ast.Block) -> None:
        """Find single-cell atomicAdd accumulators (the residual pattern)."""
        if self.opt.reduction_style != "reduction":
            return
        for dname, buf in self.bufs.items():
            size = buf.bytes_expr
            if not isinstance(size, ast.SizeOf):
                continue
            # Find the kernel param bound to this buffer and check its uses.
            used_ok = None
            for stmt in ast.walk_stmts(body):
                for e in ast.walk_exprs(stmt):
                    if isinstance(e, ast.Launch):
                        kernel = self.kernels.get(e.kernel)
                        if kernel is None:
                            continue
                        for param, arg in zip(kernel.params, e.args):
                            if isinstance(arg, ast.Ident) and arg.name == dname:
                                used_ok = self._only_atomic_add_cell0(
                                    kernel.body, param.name
                                )
            if used_ok:
                buf.reduction_scalar = self._strip_prefix(dname)

    @staticmethod
    def _only_atomic_add_cell0(body: ast.Stmt, pname: str) -> bool:
        ok = False
        matched_targets = set()
        exprs = ast.walk_exprs(body)
        for e in exprs:
            if isinstance(e, ast.Call) and e.callee == "atomicAdd":
                tgt = e.args[0]
                if (
                    isinstance(tgt, ast.Unary) and tgt.op == "&"
                    and isinstance(tgt.operand, ast.Index)
                    and isinstance(tgt.operand.base, ast.Ident)
                    and tgt.operand.base.name == pname
                    and isinstance(tgt.operand.index, ast.IntLit)
                    and tgt.operand.index.value == 0
                ):
                    ok = True
                    matched_targets.add(id(tgt.operand))
                    matched_targets.add(id(tgt.operand.base))
        for e in exprs:
            if id(e) in matched_targets:
                continue
            if isinstance(e, ast.Index) and isinstance(e.base, ast.Ident) and (
                e.base.name == pname
            ):
                return False  # read/written elsewhere in the kernel
            if isinstance(e, ast.Ident) and e.name == pname:
                return False  # bare use outside the accumulator pattern
        return ok

    def _strip_prefix(self, dname: str) -> str:
        for prefix in ("d_", "dev_", "gpu_"):
            if dname.startswith(prefix) and len(dname) > len(prefix):
                return dname[len(prefix):]
        return dname + "_v"

    def _build_names(self, fn: ast.FuncDef) -> None:
        taken = set(self.var_types)
        for buf in self.bufs.values():
            if buf.host_alias is not None or buf.reduction_scalar is not None:
                continue
            cand = self._strip_prefix(buf.dname)
            while cand in taken:
                cand += "_buf"
            buf.synth_name = cand
            taken.add(cand)
        # Reduction scalars may also collide.
        for buf in self.bufs.values():
            if buf.reduction_scalar is not None:
                cand = buf.reduction_scalar
                while cand in taken:
                    cand += "_v"
                buf.reduction_scalar = cand
                taken.add(cand)
        self.rename = {
            b.dname: (b.reduction_scalar or b.host_name) for b in self.bufs.values()
        }
        # Host buffers that only mirror a reduction cell: h_res[0] -> scalar.
        self.red_host_mirrors: Dict[str, str] = {}

    def _device_span(self, top: List[ast.Stmt]) -> Tuple[int, int]:
        """Span of statements that must live inside the ``target data``
        region: launches and device-side memsets.

        Staging calls (cudaMalloc / cudaMemcpy / cudaFree / synchronize)
        deliberately do NOT extend the span — the data region's entry/exit
        transfers subsume them, and host-side reads of the results (checksum
        loops, printf) must stay *outside* the region so they observe the
        copied-back data.
        """

        def uses_device(stmt: ast.Stmt) -> bool:
            for s in ast.walk_stmts(stmt):
                for e in ast.walk_exprs(s):
                    if isinstance(e, ast.Launch):
                        return True
                    if isinstance(e, ast.Call) and e.callee == "cudaMemset":
                        return True
            return False

        first = last = -1
        for i, stmt in enumerate(top):
            if uses_device(stmt):
                if first == -1:
                    first = i
                last = i
        if first == -1:
            raise TranspileError("no device phase found")
        return first, last

    # -- phase B -----------------------------------------------------------
    def _wrap_device_phase(self, stmts: List[ast.Stmt]) -> List[ast.Stmt]:
        prologue: List[ast.Stmt] = []
        if not self.opt.use_data_region:
            return prologue + stmts
        pragma = ast.OmpPragma(directive="target data")
        for buf in self.bufs.values():
            if buf.reduction_scalar is not None:
                continue
            pragma.maps.append(ast.MapClause(
                kind=buf.map_kind, name=buf.host_name,
                lower=_int_lit(0), length=buf.length_expr(),
            ))
        node = ast.Pragma(pragma=pragma, body=ast.Block(stmts=stmts))
        return prologue + [node]

    def _transform_host_stmt(
        self, stmt: ast.Stmt, in_device_phase: bool
    ) -> List[ast.Stmt]:
        if isinstance(stmt, ast.VarDecl):
            if stmt.name in self.bufs:
                return []  # device pointer declarations disappear
            new = _deep(stmt)
            if in_device_phase:
                substitute(new, self.rename)
            if any(b.reduction_scalar is not None for b in self.bufs.values()):
                new2 = self._rewrite_red_mirror_decl(new)
                if new2 is None:
                    return []
                new = new2
            return [new]
        if isinstance(stmt, ast.ExprStmt):
            return self._transform_expr_stmt(stmt, in_device_phase)
        if isinstance(stmt, ast.Block):
            blk = ast.Block()
            for s in stmt.stmts:
                blk.stmts.extend(self._transform_host_stmt(s, in_device_phase))
            return [blk]
        if isinstance(stmt, (ast.For, ast.While, ast.DoWhile)):
            new_body_stmts: List[ast.Stmt] = []
            body = stmt.body if isinstance(stmt.body, ast.Block) else ast.Block(
                stmts=[stmt.body]
            )
            for s in body.stmts:
                new_body_stmts.extend(self._transform_host_stmt(s, in_device_phase))
            if (
                in_device_phase
                and self.opt.hoist_invariant_repeat
                and isinstance(stmt, ast.For)
                and self._is_invariant_repeat(stmt, new_body_stmts)
            ):
                return new_body_stmts
            new = _deep(stmt)
            new.body = ast.Block(stmts=new_body_stmts)
            if in_device_phase:
                if isinstance(new, ast.For):
                    for part in (new.init,):
                        if part is not None:
                            substitute(part, self.rename)
                    for part in (new.cond, new.step):
                        if part is not None:
                            substitute(part, self.rename)
                else:
                    substitute(new.cond, self.rename)
            return [new]
        if isinstance(stmt, ast.If):
            new = _deep(stmt)
            if in_device_phase:
                substitute(new, self.rename)
            return [new]
        new = _deep(stmt)
        if in_device_phase:
            substitute(new, self.rename)
        return [new]

    def _rewrite_red_mirror_decl(self, decl: ast.VarDecl):
        """Drop host mirror buffers of reduction scalars (h_res pattern)."""
        # A decl like `double* h_res = (double*)malloc(sizeof(double));`
        if decl.init is None:
            return decl
        init = decl.init
        if isinstance(init, ast.Cast):
            inner = init.operand
        else:
            inner = init
        if (
            isinstance(inner, ast.Call) and inner.callee == "malloc"
            and len(inner.args) == 1 and isinstance(inner.args[0], ast.SizeOf)
            and decl.type.is_pointer
        ):
            self.red_host_mirrors[decl.name] = ""
            return None
        return decl

    def _is_invariant_repeat(self, loop: ast.For, body_stmts: List[ast.Stmt]) -> bool:
        """True when re-executing the body is idempotent w.r.t. outputs."""
        canon = _canonical(loop)
        if canon is None:
            return False
        var = canon.var
        for s in body_stmts:
            names = collect_identifiers(s)
            if var in names:
                return False
            # Top-level declarations or scalar/pointer mutations in the loop
            # body (the ping-pong swap idiom) make the repeat loop-carried.
            # Declarations nested inside offloaded loops are fine — they are
            # per-iteration device locals.
            if isinstance(s, ast.VarDecl):
                return False
            if isinstance(s, ast.ExprStmt) and isinstance(s.expr, ast.Assign):
                if isinstance(s.expr.target, ast.Ident):
                    return False
        return True

    def _transform_expr_stmt(
        self, stmt: ast.ExprStmt, in_device_phase: bool
    ) -> List[ast.Stmt]:
        e = stmt.expr
        if isinstance(e, ast.Call):
            if e.callee == "cudaMalloc":
                # Synthesized host partners and reduction scalars materialize
                # at the allocation site, so later references see them.
                target = e.args[0]
                if isinstance(target, ast.Cast):
                    target = target.operand
                if isinstance(target, ast.Unary) and target.op == "&" and (
                    isinstance(target.operand, ast.Ident)
                ):
                    buf = self.bufs.get(target.operand.name)
                    if buf is not None and buf.reduction_scalar is not None:
                        init = (
                            ast.FloatLit(value=0.0, text="0.0")
                            if buf.elem.is_real else _int_lit(0)
                        )
                        return [ast.VarDecl(
                            type=buf.elem, name=buf.reduction_scalar, init=init
                        )]
                    if buf is not None and buf.synth_name is not None:
                        return [ast.VarDecl(
                            type=buf.elem.pointer_to(), name=buf.synth_name,
                            init=ast.Cast(
                                type=buf.elem.pointer_to(),
                                operand=_call("malloc", _deep(buf.bytes_expr)),
                            ),
                        )]
                return []
            if e.callee in ("cudaFree", "cudaDeviceSynchronize",
                            "cudaGetLastError"):
                return []
            if e.callee == "cudaMemcpy":
                return self._transform_memcpy(e)
            if e.callee == "cudaMemset":
                return self._transform_memset(e)
            if e.callee == "free" and e.args and isinstance(e.args[0], ast.Ident) and (
                e.args[0].name in self.red_host_mirrors
            ):
                return []
        if isinstance(e, ast.Launch):
            return self._transform_launch(e)
        new = _deep(stmt)
        if in_device_phase:
            substitute(new, self.rename)
        # h_res[0] -> scalar rename for reduction mirrors.
        self._rewrite_mirror_reads(new)
        return [new]

    def _rewrite_mirror_reads(self, stmt: ast.Stmt) -> None:
        if not self.red_host_mirrors:
            return
        mirror_to_scalar = {}
        for buf in self.bufs.values():
            if buf.reduction_scalar is not None:
                for mirror in self.red_host_mirrors:
                    mirror_to_scalar[mirror] = buf.reduction_scalar
        for e in ast.walk_exprs(stmt):
            for sub in ast.walk_exprs(e):
                pass
        def fix(expr):
            for child_name in ("left", "right", "operand", "cond", "then",
                               "other", "value", "target", "base", "index"):
                child = getattr(expr, child_name, None)
                if isinstance(child, ast.Index) and isinstance(
                    child.base, ast.Ident
                ) and child.base.name in mirror_to_scalar:
                    setattr(expr, child_name, _ident(mirror_to_scalar[child.base.name]))
                elif isinstance(child, ast.Expr):
                    fix(child)
            if isinstance(expr, (ast.Call, ast.Launch)):
                for i, a in enumerate(expr.args):
                    if isinstance(a, ast.Index) and isinstance(a.base, ast.Ident) and (
                        a.base.name in mirror_to_scalar
                    ):
                        expr.args[i] = _ident(mirror_to_scalar[a.base.name])
                    else:
                        fix(a)
        if isinstance(stmt, ast.ExprStmt):
            fix(stmt.expr)
            if isinstance(stmt.expr, ast.Index) and isinstance(
                stmt.expr.base, ast.Ident
            ) and stmt.expr.base.name in mirror_to_scalar:
                stmt.expr = _ident(mirror_to_scalar[stmt.expr.base.name])

    def _transform_memcpy(self, e: ast.Call) -> List[ast.Stmt]:
        dst, src, nbytes, kind = e.args
        kname = kind.name if isinstance(kind, ast.Ident) else ""
        if self.opt.use_data_region:
            # Data region keeps everything coherent; copies between a buffer
            # and its own alias vanish.  Copies from a *different* host
            # array materialize as host loops before/after the region — for
            # the supported apps the alias case always applies, except
            # distinct staging arrays which become plain memcpy.
            if kname == "cudaMemcpyHostToDevice" and isinstance(dst, ast.Ident):
                buf = self.bufs.get(dst.name)
                if buf is not None and isinstance(src, ast.Ident) and (
                    src.name == buf.host_name
                ):
                    return []
                if buf is not None:
                    return [_expr_stmt(_call(
                        "memcpy", _ident(buf.host_name), _deep(src), _deep(nbytes)
                    ))]
            if kname == "cudaMemcpyDeviceToHost" and isinstance(src, ast.Ident):
                buf = self.bufs.get(src.name)
                if buf is not None:
                    if buf.reduction_scalar is not None:
                        return []
                    if isinstance(dst, ast.Ident) and dst.name == buf.host_name:
                        return []
                    return [_expr_stmt(_call(
                        "memcpy", _deep(dst), _ident(buf.host_name), _deep(nbytes)
                    ))]
            return []
        # Literal style: copies become memcpy between host arrays (the map
        # clauses on each loop do the actual device movement).
        red_scalars = {
            b.dname for b in self.bufs.values() if b.reduction_scalar is not None
        }
        for end in (dst, src):
            if isinstance(end, ast.Ident) and (
                end.name in red_scalars or end.name in self.red_host_mirrors
            ):
                return []
        new_args = [_deep(dst), _deep(src), _deep(nbytes)]
        for a in new_args:
            substitute(a, self.rename)
        if kname in ("cudaMemcpyHostToDevice", "cudaMemcpyDeviceToHost"):
            if (
                isinstance(new_args[0], ast.Ident)
                and isinstance(new_args[1], ast.Ident)
                and new_args[0].name == new_args[1].name
            ):
                return []
            return [_expr_stmt(_call("memcpy", *new_args))]
        return []

    def _transform_memset(self, e: ast.Call) -> List[ast.Stmt]:
        ptr, value, nbytes = e.args
        if not isinstance(ptr, ast.Ident) or ptr.name not in self.bufs:
            new = _deep(e)
            substitute(new, self.rename)
            return [_expr_stmt(new)]
        buf = self.bufs[ptr.name]
        if buf.reduction_scalar is not None:
            return [_expr_stmt(ast.Assign(
                op="=", target=_ident(buf.reduction_scalar),
                value=ast.FloatLit(value=0.0, text="0.0") if buf.elem.is_real else _int_lit(0),
            ))]
        # Zero on the device with a target loop (like hand-written ports).
        lv = self.opt.loop_var
        zero = ast.FloatLit(value=0.0, text="0.0f") if buf.elem.is_real else _int_lit(0)
        loop = ast.For(
            init=ast.VarDecl(type=ty.INT, name=lv, init=_int_lit(0)),
            cond=ast.Binary(op="<", left=_ident(lv), right=buf.length_expr()),
            step=ast.Postfix(op="++", operand=_ident(lv)),
            body=ast.Block(stmts=[_expr_stmt(ast.Assign(
                op="=", target=ast.Index(base=_ident(buf.host_name), index=_ident(lv)),
                value=zero,
            ))]),
        )
        pragma = ast.OmpPragma(directive="target teams distribute parallel for")
        if not self.opt.use_data_region:
            pragma.maps.append(ast.MapClause(
                kind="tofrom", name=buf.host_name,
                lower=_int_lit(0), length=buf.length_expr(),
            ))
        return [ast.Pragma(pragma=pragma, body=loop)]

    def _transform_launch(self, e: ast.Launch) -> List[ast.Stmt]:
        kernel = self.kernels.get(e.kernel)
        if kernel is None:
            raise TranspileError(f"launch of unknown kernel '{e.kernel}'")
        if len(e.args) != len(kernel.params):
            raise TranspileError(f"launch arity mismatch for '{e.kernel}'")

        body, idx_var, bound = self._extract_kernel_loop(kernel)

        # Substitute params with argument expressions (args first renamed to
        # host aliases).
        mapping: Dict[str, str] = {}
        pre_stmts: List[ast.Stmt] = []
        red_scalar: Optional[str] = None
        for param, arg in zip(kernel.params, e.args):
            if isinstance(arg, ast.Ident):
                target = self.rename.get(arg.name, arg.name)
                buf = self.bufs.get(arg.name)
                if buf is not None and buf.reduction_scalar is not None:
                    red_scalar = buf.reduction_scalar
                    mapping[param.name] = "__red__" + red_scalar
                else:
                    mapping[param.name] = target
            elif isinstance(arg, (ast.IntLit, ast.FloatLit)):
                # Literal argument: bind via a fresh const-ish local.
                mapping[param.name] = param.name
                pre_stmts.append(ast.VarDecl(
                    type=param.type, name=param.name, init=_deep(arg)
                ))
            else:
                # Expression argument: bind to a local of the param name.
                mapping[param.name] = param.name
                bound_expr = _deep(arg)
                substitute(bound_expr, self.rename)
                pre_stmts.append(ast.VarDecl(
                    type=param.type, name=param.name, init=bound_expr
                ))

        new_body = _deep(body)
        new_bound = _deep(bound)
        substitute(new_body, mapping)
        substitute(new_bound, mapping)

        if self.opt.privatize_atomics and red_scalar is None:
            privatized = self._privatized_atomic_loop(new_body, idx_var, new_bound)
            if privatized is not None:
                return pre_stmts + privatized

        # Rewrite atomics.
        new_body, used_reduction = self._rewrite_kernel_atomics(new_body, red_scalar)

        pragma = ast.OmpPragma(directive="target teams distribute parallel for")
        if used_reduction and red_scalar is not None:
            pragma.reduction = ast.ReductionClause(op="+", names=[red_scalar])
        if self.opt.emit_num_threads:
            pragma.num_threads = _int_lit(self.opt.block_size)
        if not self.opt.use_data_region:
            # Per-loop maps from access analysis.
            acc = pointer_access_kinds(new_body)
            for name, info in sorted(acc.items()):
                for buf in self.bufs.values():
                    if buf.host_name == name and buf.reduction_scalar is None:
                        pragma.maps.append(ast.MapClause(
                            kind=info.map_kind, name=name,
                            lower=_int_lit(0), length=buf.length_expr(),
                        ))
                        break

        loop = ast.For(
            init=ast.VarDecl(type=ty.INT, name=idx_var, init=_int_lit(0)),
            cond=ast.Binary(op="<", left=_ident(idx_var), right=new_bound),
            step=ast.Postfix(op="++", operand=_ident(idx_var)),
            body=new_body if isinstance(new_body, ast.Block) else ast.Block(
                stmts=[new_body]
            ),
        )
        return pre_stmts + [ast.Pragma(pragma=pragma, body=loop)]

    def _privatized_atomic_loop(
        self, body: ast.Stmt, idx_var: str, bound: ast.Expr
    ) -> Optional[List[ast.Stmt]]:
        """Rewrite an atomic-histogram body into a chunk-privatized loop.

        Applies when every atomicAdd in the body targets the *same* integer
        array: each device iteration then processes a chunk of the index
        space into a local histogram and merges it with one atomic per bin —
        identical output, a fraction of the atomic traffic (§V-D DeepSeek
        anecdote).
        """
        wrapper = body if isinstance(body, ast.Block) else ast.Block(stmts=[body])
        hist_name: Optional[str] = None
        for e in ast.walk_exprs(wrapper):
            if isinstance(e, ast.Call) and e.callee in ("atomicAdd", "atomicSub"):
                tgt = e.args[0]
                if not (
                    isinstance(tgt, ast.Unary) and tgt.op == "&"
                    and isinstance(tgt.operand, ast.Index)
                    and isinstance(tgt.operand.base, ast.Ident)
                ):
                    return None
                name = tgt.operand.base.name
                if hist_name is None:
                    hist_name = name
                elif hist_name != name:
                    return None
            elif isinstance(e, ast.Assign) and isinstance(e.target, ast.Index):
                return None  # other array writes: not a pure histogram
        if hist_name is None:
            return None
        hist_buf = None
        for buf in self.bufs.values():
            if buf.host_name == hist_name:
                hist_buf = buf
        if hist_buf is None or hist_buf.elem.is_real:
            return None
        nbins = hist_buf.length_expr()
        chunk = self.opt.privatize_chunk
        local = "local_" + hist_name

        # Body with atomicAdd(&hist[E], V) -> local[E] += V.
        inner_body = _deep(wrapper)

        def rewrite(block: ast.Block) -> None:
            for i, s in enumerate(block.stmts):
                if isinstance(s, ast.ExprStmt) and isinstance(s.expr, ast.Call) and (
                    s.expr.callee in ("atomicAdd", "atomicSub")
                ):
                    tgt = s.expr.args[0].operand  # Index, validated above
                    op = "+=" if s.expr.callee == "atomicAdd" else "-="
                    block.stmts[i] = _expr_stmt(ast.Assign(
                        op=op,
                        target=ast.Index(base=_ident(local), index=_deep(tgt.index)),
                        value=_deep(s.expr.args[1]),
                    ))
                elif isinstance(s, ast.Block):
                    rewrite(s)
                elif isinstance(s, ast.If):
                    for part in (s.then, s.other):
                        if isinstance(part, ast.Block):
                            rewrite(part)
                elif isinstance(s, (ast.For, ast.While, ast.DoWhile)):
                    if isinstance(s.body, ast.Block):
                        rewrite(s.body)
        rewrite(inner_body)

        def counting_loop(var: str, bound_expr: ast.Expr, body_stmts: List[ast.Stmt]) -> ast.For:
            return ast.For(
                init=ast.VarDecl(type=ty.INT, name=var, init=_int_lit(0)),
                cond=ast.Binary(op="<", left=_ident(var), right=bound_expr),
                step=ast.Postfix(op="++", operand=_ident(var)),
                body=ast.Block(stmts=body_stmts),
            )

        chunk_body = ast.Block(stmts=[
            ast.VarDecl(type=ty.INT, name=local, array_size=_deep(nbins)),
            counting_loop("v", _deep(nbins), [
                _expr_stmt(ast.Assign(
                    op="=", target=ast.Index(base=_ident(local), index=_ident("v")),
                    value=_int_lit(0),
                )),
            ]),
            counting_loop("k", _int_lit(chunk), [
                ast.VarDecl(
                    type=ty.INT, name=idx_var,
                    init=ast.Binary(
                        op="+",
                        left=_mul(_ident("chunk_i"), _int_lit(chunk)),
                        right=_ident("k"),
                    ),
                ),
                ast.If(
                    cond=ast.Binary(op="<", left=_ident(idx_var), right=_deep(bound)),
                    then=inner_body,
                ),
            ]),
            counting_loop("v", _deep(nbins), [
                ast.If(
                    cond=ast.Binary(
                        op=">",
                        left=ast.Index(base=_ident(local), index=_ident("v")),
                        right=_int_lit(0),
                    ),
                    then=ast.Block(stmts=[
                        ast.Pragma(
                            pragma=ast.OmpPragma(directive="atomic"),
                            body=_expr_stmt(ast.Assign(
                                op="+=",
                                target=ast.Index(
                                    base=_ident(hist_name), index=_ident("v")
                                ),
                                value=ast.Index(base=_ident(local), index=_ident("v")),
                            )),
                        ),
                    ]),
                ),
            ]),
        ])

        nchunks = ast.Binary(
            op="/",
            left=ast.Binary(op="+", left=_deep(bound), right=_int_lit(chunk - 1)),
            right=_int_lit(chunk),
        )
        pragma = ast.OmpPragma(directive="target teams distribute parallel for")
        if not self.opt.use_data_region:
            acc = pointer_access_kinds(chunk_body)
            for name, info in sorted(acc.items()):
                for buf in self.bufs.values():
                    if buf.host_name == name and buf.reduction_scalar is None:
                        pragma.maps.append(ast.MapClause(
                            kind=info.map_kind, name=name,
                            lower=_int_lit(0), length=buf.length_expr(),
                        ))
                        break
        loop = counting_loop("chunk_i", nchunks, chunk_body.stmts)
        return [ast.Pragma(pragma=pragma, body=loop)]

    def _extract_kernel_loop(self, kernel: ast.FuncDef):
        """Match the canonical guarded-thread-index kernel shape."""
        stmts = kernel.body.stmts
        if not stmts:
            raise TranspileError(f"kernel '{kernel.name}' has an empty body")
        first = stmts[0]
        if not (isinstance(first, ast.VarDecl) and first.init is not None):
            raise TranspileError(
                f"kernel '{kernel.name}' does not start with an index computation"
            )
        idx_var = first.name
        if not self._is_thread_index(first.init):
            raise TranspileError(
                f"kernel '{kernel.name}' index is not blockIdx*blockDim+threadIdx"
            )
        rest = stmts[1:]
        if len(rest) == 1 and isinstance(rest[0], ast.If) and rest[0].other is None:
            guard = rest[0]
            cond = guard.cond
            if (
                isinstance(cond, ast.Binary) and cond.op == "<"
                and isinstance(cond.left, ast.Ident) and cond.left.name == idx_var
            ):
                return guard.then, idx_var, cond.right
        raise TranspileError(
            f"kernel '{kernel.name}' body is not a guarded canonical form"
        )

    @staticmethod
    def _is_thread_index(expr: ast.Expr) -> bool:
        if not (isinstance(expr, ast.Binary) and expr.op == "+"):
            return False

        def is_geom(e: ast.Expr, name: str) -> bool:
            return (
                isinstance(e, ast.Member)
                and isinstance(e.obj, ast.Ident)
                and e.obj.name == name
                and e.field_name == "x"
            )

        left, right = expr.left, expr.right
        if is_geom(right, "threadIdx") and isinstance(left, ast.Binary) and (
            left.op == "*"
        ):
            a, b = left.left, left.right
            return (is_geom(a, "blockIdx") and is_geom(b, "blockDim")) or (
                is_geom(a, "blockDim") and is_geom(b, "blockIdx")
            )
        if is_geom(left, "threadIdx") and isinstance(right, ast.Binary) and (
            right.op == "*"
        ):
            a, b = right.left, right.right
            return (is_geom(a, "blockIdx") and is_geom(b, "blockDim")) or (
                is_geom(a, "blockDim") and is_geom(b, "blockIdx")
            )
        return False

    def _rewrite_kernel_atomics(self, body: ast.Stmt, red_scalar: Optional[str]):
        """atomicAdd -> `#pragma omp atomic` or reduction accumulation."""
        used_reduction = False
        wrapper = body if isinstance(body, ast.Block) else ast.Block(stmts=[body])

        def rewrite_block(block: ast.Block) -> None:
            nonlocal used_reduction
            new_stmts: List[ast.Stmt] = []
            for s in block.stmts:
                if isinstance(s, ast.ExprStmt) and isinstance(s.expr, ast.Call) and (
                    s.expr.callee in ("atomicAdd", "atomicSub")
                ):
                    tgt, val = s.expr.args[0], s.expr.args[1]
                    op = "+=" if s.expr.callee == "atomicAdd" else "-="
                    if (
                        red_scalar is not None
                        and isinstance(tgt, ast.Unary) and tgt.op == "&"
                        and isinstance(tgt.operand, ast.Index)
                        and isinstance(tgt.operand.base, ast.Ident)
                        and tgt.operand.base.name == "__red__" + red_scalar
                    ):
                        used_reduction = True
                        new_stmts.append(_expr_stmt(ast.Assign(
                            op=op, target=_ident(red_scalar), value=val
                        )))
                        continue
                    if isinstance(tgt, ast.Unary) and tgt.op == "&" and isinstance(
                        tgt.operand, ast.Index
                    ):
                        pragma = ast.OmpPragma(directive="atomic")
                        new_stmts.append(ast.Pragma(
                            pragma=pragma,
                            body=_expr_stmt(ast.Assign(
                                op=op, target=_deep(tgt.operand), value=val
                            )),
                        ))
                        continue
                    raise TranspileError("unsupported atomic target in kernel")
                if isinstance(s, ast.Block):
                    rewrite_block(s)
                elif isinstance(s, ast.If):
                    for part in (s.then, s.other):
                        if isinstance(part, ast.Block):
                            rewrite_block(part)
                elif isinstance(s, (ast.For, ast.While, ast.DoWhile)):
                    if isinstance(s.body, ast.Block):
                        rewrite_block(s.body)
                new_stmts.append(s)
            block.stmts = new_stmts
        rewrite_block(wrapper)
        return wrapper, used_reduction


# =====================================================================
# Public interface
# =====================================================================


class Transpiler:
    """Bi-directional translator with per-model style options."""

    def __init__(self, options: Optional[TranspileOptions] = None) -> None:
        self.options = options or TranspileOptions()

    def translate(self, source_text: str, source_dialect: Dialect,
                  target_dialect: Dialect) -> str:
        """Translate ``source_text`` and render the target-dialect source."""
        if source_dialect is target_dialect:
            raise ValueError("source and target dialects must differ")
        program = _parse_source(source_text, source_dialect)
        if source_dialect is Dialect.OMP and target_dialect is Dialect.CUDA:
            out = _Omp2Cuda(program, self.options).run()
        elif source_dialect is Dialect.CUDA and target_dialect is Dialect.OMP:
            out = _Cuda2Omp(program, self.options).run()
        else:
            raise ValueError(
                f"unsupported translation {source_dialect} -> {target_dialect}"
            )
        if self.options.hoist_decls:
            self._hoist_decls(out)
        style = self.options.codegen
        if self.options.rename_scheme:
            mapping = self._rename_map(out, self.options.rename_scheme)
            style = replace(style, rename=mapping)
        return generate(out, style)

    @staticmethod
    def _hoist_decls(program: ast.Program) -> None:
        """Move top-level declarations of host functions to the body top."""
        for fn in program.functions:
            if fn.is_kernel or fn.is_device:
                continue
            decls: List[ast.Stmt] = []
            rest: List[ast.Stmt] = []
            for stmt in fn.body.stmts:
                if isinstance(stmt, ast.VarDecl) and stmt.array_size is None and (
                    not stmt.const
                ):
                    hoisted = ast.VarDecl(type=stmt.type, name=stmt.name)
                    hoisted.span = stmt.span
                    decls.append(hoisted)
                    if stmt.init is not None:
                        assign = ast.ExprStmt(expr=ast.Assign(
                            op="=",
                            target=ast.Ident(name=stmt.name),
                            value=stmt.init,
                        ))
                        assign.span = stmt.span
                        rest.append(assign)
                else:
                    rest.append(stmt)
            fn.body.stmts = decls + rest

    @staticmethod
    def _rename_map(program: ast.Program, scheme: str) -> Dict[str, str]:
        """Build a consistent variable-renaming map over the whole program."""
        names: Set[str] = set()
        for fn in program.functions:
            if fn.name == "main":
                pass
            for p in fn.params:
                if p.name:
                    names.add(p.name)
            for s in ast.walk_stmts(fn.body):
                if isinstance(s, ast.VarDecl):
                    names.add(s.name)
        for gv in program.globals:
            names.add(gv.decl.name)
        fn_names = {fn.name for fn in program.functions}
        names -= fn_names

        def rename(name: str) -> str:
            if scheme == "suffix":
                return name + "_"
            if scheme == "verbose":
                return "v_" + name
            return name

        mapping = {n: rename(n) for n in sorted(names)}
        # Injectivity guard: schemes above are injective, but keep the
        # check so future schemes cannot silently merge variables.
        if len(set(mapping.values())) != len(mapping):
            raise ValueError(f"rename scheme {scheme!r} is not injective")
        return mapping
