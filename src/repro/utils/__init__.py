"""Shared utilities: deterministic RNG streams, text/token helpers, tables."""

from repro.utils.rng import RngStream, derive_seed
from repro.utils.text import (
    dedent_code,
    extract_code_block,
    normalize_stdout,
    strip_comments,
)
from repro.utils.tokens import count_tokens, tokenize_code, tokenize_text
from repro.utils.tables import render_table

__all__ = [
    "RngStream",
    "derive_seed",
    "dedent_code",
    "extract_code_block",
    "normalize_stdout",
    "strip_comments",
    "count_tokens",
    "tokenize_code",
    "tokenize_text",
    "render_table",
]
