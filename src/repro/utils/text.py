"""Text utilities: code-fence extraction, stdout normalization, comments.

The LASSI pipeline (§III-C of the paper) captures the LLM's free-text response
and "filters out the code block, which is saved to a local file".  The fence
handling here is therefore part of the core pipeline contract, not a cosmetic
helper, and is tested accordingly.
"""

from __future__ import annotations

import re
from typing import List, Optional

_FENCE_RE = re.compile(
    r"```(?P<lang>[A-Za-z0-9_+.#-]*)[ \t]*\r?\n(?P<body>.*?)```",
    re.DOTALL,
)

# Languages an LLM plausibly tags translated GPU code with.
_CODE_LANGS = {
    "", "c", "cpp", "c++", "cuda", "cu", "cxx", "h", "hpp", "openmp", "omp",
}


def extract_code_block(response: str, prefer_langs: Optional[List[str]] = None) -> Optional[str]:
    """Extract the most plausible code block from an LLM response.

    Strategy (mirrors LASSI's "filter out the code block"):

    1. Collect all triple-backtick fenced blocks.
    2. Prefer blocks tagged with one of ``prefer_langs`` (case-insensitive),
       then any block tagged with a C-family language, then untagged blocks.
    3. Among candidates of equal preference, take the **longest** — LLMs often
       emit a short usage snippet alongside the full translation.
    4. If no fences exist but the text *looks like* bare code (has ``int main``
       or a kernel signature), return the whole text.

    Returns ``None`` if nothing code-like is present.
    """
    prefer = {lang.lower() for lang in (prefer_langs or [])}
    matches = list(_FENCE_RE.finditer(response))
    if matches:
        ranked = []
        for m in matches:
            lang = m.group("lang").lower()
            body = m.group("body")
            if prefer and lang in prefer:
                rank = 0
            elif lang in _CODE_LANGS:
                rank = 1
            else:
                rank = 2
            ranked.append((rank, -len(body), body))
        ranked.sort(key=lambda item: (item[0], item[1]))
        best = ranked[0][2]
        return best.strip("\n") + "\n" if best.strip() else None
    if re.search(r"\bint\s+main\s*\(", response) or "__global__" in response:
        return response.strip("\n") + "\n"
    return None


def strip_comments(code: str) -> str:
    """Remove ``//`` line comments and ``/* */`` block comments.

    String literals are respected (a ``//`` inside quotes survives).
    """
    out: List[str] = []
    i, n = 0, len(code)
    in_string = False
    while i < n:
        ch = code[i]
        if in_string:
            out.append(ch)
            if ch == "\\" and i + 1 < n:
                out.append(code[i + 1])
                i += 2
                continue
            if ch == '"':
                in_string = False
            i += 1
            continue
        if ch == '"':
            in_string = True
            out.append(ch)
            i += 1
            continue
        if ch == "/" and i + 1 < n and code[i + 1] == "/":
            while i < n and code[i] != "\n":
                i += 1
            continue
        if ch == "/" and i + 1 < n and code[i + 1] == "*":
            j = code.find("*/", i + 2)
            # Preserve line structure of the removed block comment.
            block = code[i: (j + 2) if j != -1 else n]
            out.append("\n" * block.count("\n"))
            i = (j + 2) if j != -1 else n
            continue
        out.append(ch)
        i += 1
    return "".join(out)


def dedent_code(code: str) -> str:
    """Strip the common leading whitespace of all non-blank lines."""
    lines = code.splitlines()
    indents = [
        len(line) - len(line.lstrip())
        for line in lines
        if line.strip()
    ]
    if not indents:
        return code
    cut = min(indents)
    return "\n".join(line[cut:] if line.strip() else "" for line in lines) + (
        "\n" if code.endswith("\n") else ""
    )


def normalize_stdout(text: str) -> str:
    """Normalize program stdout for comparison between two runs.

    * strips trailing whitespace per line,
    * drops blank lines at the edges,
    * normalizes line endings.

    Deliberately does **not** round numbers: the two dialect versions of each
    benchmark app are written to produce identical output bit-for-bit thanks
    to the deterministic ``rand`` intrinsic.
    """
    lines = [line.rstrip() for line in text.replace("\r\n", "\n").split("\n")]
    while lines and not lines[0]:
        lines.pop(0)
    while lines and not lines[-1]:
        lines.pop()
    return "\n".join(lines)
