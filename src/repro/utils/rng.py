"""Deterministic, hierarchical random-number streams.

Everything stochastic in the reproduction (fault injection, style selection,
repair success) draws from an :class:`RngStream` derived from a root seed and
a tuple of string keys.  Two properties matter for a simulation substrate:

* **Reproducibility** — the same (seed, keys) always yields the same stream,
  independent of call order elsewhere in the program.
* **Independence** — streams for different keys are statistically
  uncorrelated, so adding a new consumer never perturbs existing results
  (the "no spooky action" rule common in parallel Monte-Carlo codes).

We derive child seeds with BLAKE2b over the key path, then feed NumPy's
``Generator(PCG64)``, the counter-based generator recommended for parallel
streams by the NumPy docs.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

_MASK64 = (1 << 64) - 1


def derive_seed(root: int, *keys: str) -> int:
    """Derive a 64-bit child seed from ``root`` and a path of string keys.

    The derivation is stable across Python versions and platforms (unlike
    ``hash()``) because it uses BLAKE2b.
    """
    h = hashlib.blake2b(digest_size=8)
    h.update(str(int(root) & _MASK64).encode("ascii"))
    for key in keys:
        h.update(b"\x1f")
        h.update(key.encode("utf-8"))
    return int.from_bytes(h.digest(), "little")


class RngStream:
    """A named, seeded random stream with convenience draws.

    Parameters
    ----------
    root:
        Root seed of the whole experiment.
    keys:
        Path of string keys naming this stream (e.g. ``("llm", "codestral",
        "jacobi", "omp2cuda")``).
    """

    def __init__(self, root: int, *keys: str) -> None:
        self.root = int(root) & _MASK64
        self.keys = tuple(keys)
        self._gen = np.random.Generator(np.random.PCG64(derive_seed(root, *keys)))

    def child(self, *keys: str) -> "RngStream":
        """Create an independent sub-stream under this stream's key path."""
        return RngStream(self.root, *(self.keys + tuple(keys)))

    def uniform(self, low: float = 0.0, high: float = 1.0) -> float:
        return float(self._gen.uniform(low, high))

    def randint(self, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        if high < low:
            raise ValueError(f"empty range [{low}, {high}]")
        return int(self._gen.integers(low, high + 1))

    def bernoulli(self, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability out of range: {p}")
        return bool(self._gen.random() < p)

    def choice(self, items: Sequence):
        """Uniformly choose one element of a non-empty sequence."""
        if len(items) == 0:
            raise ValueError("cannot choose from an empty sequence")
        return items[int(self._gen.integers(0, len(items)))]

    def weighted_choice(self, items: Sequence, weights: Iterable[float]):
        """Choose one element with the given (non-negative) weights."""
        w = np.asarray(list(weights), dtype=float)
        if len(w) != len(items):
            raise ValueError("weights length must match items length")
        if np.any(w < 0) or w.sum() <= 0:
            raise ValueError("weights must be non-negative and sum > 0")
        idx = int(self._gen.choice(len(items), p=w / w.sum()))
        return items[idx]

    def shuffle(self, items: Sequence) -> list:
        """Return a shuffled copy of ``items``."""
        out = list(items)
        self._gen.shuffle(out)
        return out

    def normal(self, mean: float = 0.0, std: float = 1.0) -> float:
        return float(self._gen.normal(mean, std))

    def lognormal_factor(self, sigma: float) -> float:
        """Multiplicative noise factor with median 1.0 (used for runtime jitter)."""
        return float(np.exp(self._gen.normal(0.0, sigma)))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RngStream(root={self.root}, keys={self.keys!r})"
