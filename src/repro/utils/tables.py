"""Plain-text table rendering for experiment reports.

The benchmark harness prints the same rows the paper's tables report; this
module renders them in aligned ASCII so `pytest benchmarks/ -s` output can be
diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Optional, Sequence


def _fmt_cell(value: object) -> str:
    if value is None:
        return "N/A"
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
    aligns: Optional[Sequence[str]] = None,
) -> str:
    """Render an aligned ASCII table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row cell values; ``None`` renders as ``N/A``, floats as 4 decimals.
    title:
        Optional title line above the table.
    aligns:
        Per-column ``"l"`` or ``"r"``; defaults to left for the first column
        and right for the rest (the convention of the paper's tables).
    """
    str_rows: List[List[str]] = [[_fmt_cell(v) for v in row] for row in rows]
    ncols = len(headers)
    for row in str_rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells, expected {ncols}: {row!r}"
            )
    if aligns is None:
        aligns = ["l"] + ["r"] * (ncols - 1)
    widths = [
        max(len(headers[c]), *(len(r[c]) for r in str_rows)) if str_rows else len(headers[c])
        for c in range(ncols)
    ]

    def fmt_row(cells: Sequence[str]) -> str:
        parts = []
        for c, cell in enumerate(cells):
            if aligns[c] == "r":
                parts.append(cell.rjust(widths[c]))
            else:
                parts.append(cell.ljust(widths[c]))
        return "  ".join(parts).rstrip()

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt_row(list(headers)))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt_row(r) for r in str_rows)
    return "\n".join(lines)
