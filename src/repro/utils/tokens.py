"""Approximate tokenizers for context-window accounting and similarity.

Two distinct tokenizations are needed:

* :func:`tokenize_text` — an LLM-ish subword-free approximation used for
  context-window budgeting (§III-B of the paper reports knowledge documents
  of 7,290 and 4,053 tokens; we reproduce those budgets with this scheme).
* :func:`tokenize_code` — a lexical tokenization used by the **Sim-T** metric
  (token-based Ratcliff-Obershelp similarity, §V-A).
"""

from __future__ import annotations

import re
from typing import List

# Word pieces, numbers, and single punctuation marks; an empirically
# reasonable stand-in for BPE token counts on English + code (≈1.3x words).
_TEXT_TOKEN_RE = re.compile(r"[A-Za-z]+|[0-9]+|[^\sA-Za-z0-9]")

# C-family lexical tokens: identifiers, numbers, strings, multi-char
# operators, then single chars.
_CODE_TOKEN_RE = re.compile(
    r"""
      [A-Za-z_][A-Za-z_0-9]*          # identifier / keyword
    | 0[xX][0-9a-fA-F]+               # hex literal
    | \d+\.\d*(?:[eE][+-]?\d+)?[fF]?  # float literal
    | \.\d+(?:[eE][+-]?\d+)?[fF]?     # float literal (leading dot)
    | \d+(?:[eE][+-]?\d+)?[fF]?       # int literal
    | "(?:[^"\\]|\\.)*"               # string literal
    | '(?:[^'\\]|\\.)'                # char literal
    | <<<|>>>                         # CUDA launch delimiters
    | <<=|>>=|\+\+|--|->|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=
    | \S                              # any other single non-space char
    """,
    re.VERBOSE,
)


def tokenize_text(text: str) -> List[str]:
    """Tokenize prose (or anything) for context-window budgeting."""
    return _TEXT_TOKEN_RE.findall(text)


def count_tokens(text: str) -> int:
    """Approximate LLM token count of ``text``."""
    return len(tokenize_text(text))


def tokenize_code(code: str) -> List[str]:
    """Lexically tokenize C-family source code for the Sim-T metric."""
    return _CODE_TOKEN_RE.findall(code)
