"""Deterministic interpreter for MiniCUDA / MiniOMP programs.

Architecture (the fast-tree-walk idiom):

* :mod:`repro.interp.compiler` lowers the AST once into nested Python
  closures — roughly 5-10x faster than re-walking dataclass nodes, which
  matters because kernels execute thousands of simulated GPU threads.
* :mod:`repro.interp.memory` provides NumPy-free list-backed buffers with
  bounds/space/use-after-free checking: guest bugs surface as the same
  runtime errors a real platform produces ("Segmentation fault", "CUDA
  error: an illegal memory access was encountered", ...), which is exactly
  the stderr text LASSI's self-correction loop consumes.
* :mod:`repro.interp.executor` owns program setup, CUDA kernel launches
  (including ``__syncthreads`` barrier scheduling), OpenMP target-region
  mapping semantics, and work counting for the performance model.
"""

from repro.interp.executor import ProgramRunner, RunOutcome
from repro.interp.context import ExecContext, Limits

__all__ = ["ProgramRunner", "RunOutcome", "ExecContext", "Limits"]
