"""Runtime value helpers: C-style arithmetic and printf formatting."""

from __future__ import annotations

import math
import re
from typing import List

from repro.errors import GuestRuntimeError


def c_div(a, b):
    """C division: trunc-toward-zero for ints, IEEE semantics for floats."""
    if isinstance(a, float) or isinstance(b, float):
        fb = float(b)
        if fb == 0.0:
            fa = float(a)
            if fa == 0.0:
                return math.nan
            return math.inf if fa > 0 else -math.inf
        return float(a) / fb
    if b == 0:
        raise GuestRuntimeError("Floating point exception (core dumped)",
                                detail="integer division by zero")
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def c_mod(a, b):
    """C modulo: result takes the sign of the dividend."""
    if isinstance(a, float) or isinstance(b, float):
        if float(b) == 0.0:
            return math.nan
        return math.fmod(float(a), float(b))
    if b == 0:
        raise GuestRuntimeError("Floating point exception (core dumped)",
                                detail="integer modulo by zero")
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


def truthy(v) -> bool:
    if v is None:  # NULL pointer
        return False
    return bool(v)


_FMT_RE = re.compile(r"%[-+ #0]*\d*(?:\.\d+)?(?:hh|h|ll|l|z)?[diufFeEgGxXoscp%]")


def c_printf(fmt: str, args: List) -> str:
    """Format ``fmt`` with ``args`` using C printf semantics (common subset).

    Raises :class:`GuestRuntimeError` when a conversion consumes a missing
    argument (real printf would read garbage; we fail loudly and
    deterministically, which shows up as an execution error).
    """
    out: List[str] = []
    pos = 0
    argi = 0
    for m in _FMT_RE.finditer(fmt):
        out.append(fmt[pos:m.start()])
        pos = m.end()
        spec = m.group(0)
        conv = spec[-1]
        if conv == "%":
            out.append("%")
            continue
        if argi >= len(args):
            raise GuestRuntimeError(
                "Segmentation fault (core dumped)",
                detail=f"printf: missing argument for conversion '{spec}'",
            )
        value = args[argi]
        argi += 1
        # Strip length modifiers; Python handles width/precision natively.
        body = spec[1:-1]
        for lm in ("hh", "ll", "h", "l", "z"):
            if body.endswith(lm):
                body = body[: -len(lm)]
                break
        try:
            if conv in "di":
                out.append(("%" + body + "d") % int(value))
            elif conv == "u":
                iv = int(value)
                out.append(("%" + body + "d") % (iv & 0xFFFFFFFF if iv < 0 else iv))
            elif conv in "fFeEgG":
                out.append(("%" + body + conv) % float(value))
            elif conv in "xXo":
                iv = int(value)
                out.append(("%" + body + conv) % (iv & 0xFFFFFFFF if iv < 0 else iv))
            elif conv == "s":
                from repro.interp.memory import Pointer

                if isinstance(value, Pointer):
                    value = value.read_string()
                out.append(("%" + body + "s") % (value,))
            elif conv == "c":
                if isinstance(value, int):
                    value = chr(value & 0xFF)
                out.append(("%" + body + "s") % (value,))
            elif conv == "p":
                out.append(hex(id(value) & 0xFFFFFFFFFFFF))
        except (TypeError, ValueError) as exc:
            raise GuestRuntimeError(
                "Segmentation fault (core dumped)",
                detail=f"printf: bad argument for conversion '{spec}': {exc}",
            ) from exc
    out.append(fmt[pos:])
    return "".join(out)
