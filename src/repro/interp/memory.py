"""Guest memory model: list-backed buffers with space tagging.

Buffers are Python lists (fastest per-element access under CPython — NumPy
scalar indexing boxes on every read, which dominates an interpreter's hot
loop; see the profiling-first guidance the project follows).  Each buffer is
tagged with an address space:

* ``host``   — malloc'd memory; dereferencing it from device code raises the
  CUDA illegal-access error.
* ``device`` — cudaMalloc'd memory (or an OpenMP present-table shadow);
  dereferencing it from host code raises a segfault, exactly what happens on
  a real system when host code touches a device pointer.

OpenMP ``map`` semantics attach a device *shadow* buffer to a host buffer
with reference counting (nested ``target data`` regions map once), matching
the OpenMP present-table model.
"""

from __future__ import annotations

from typing import List, Optional

from repro.errors import GuestRuntimeError
from repro.minilang import types as ty

_SEGFAULT = "Segmentation fault (core dumped)"
_ILLEGAL = "CUDA error: an illegal memory access was encountered"


class Buffer:
    """One allocation in the guest."""

    __slots__ = (
        "cells", "length", "elem_bytes", "is_float", "space", "freed",
        "shadow", "map_depth", "map_kinds", "label",
    )

    def __init__(
        self,
        length: int,
        elem_bytes: int,
        is_float: bool,
        space: str,
        label: str = "",
    ) -> None:
        fill = 0.0 if is_float else 0
        self.cells: List = [fill] * length
        self.length = length
        self.elem_bytes = elem_bytes
        self.is_float = is_float
        self.space = space
        self.freed = False
        self.shadow: Optional["Buffer"] = None
        self.map_depth = 0
        self.map_kinds: List[str] = []
        self.label = label

    @property
    def nbytes(self) -> int:
        return self.length * self.elem_bytes

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Buffer({self.label or '?'}, n={self.length}, "
            f"elem={self.elem_bytes}B, {self.space}{', freed' if self.freed else ''})"
        )


class Pointer:
    """A typed pointer: buffer + element offset."""

    __slots__ = ("buf", "off")

    def __init__(self, buf: Buffer, off: int = 0) -> None:
        self.buf = buf
        self.off = off

    def offset_by(self, delta: int) -> "Pointer":
        return Pointer(self.buf, self.off + int(delta))

    def read_string(self) -> str:
        """Interpret the pointed-to cells as a string (argv support)."""
        cell = self.buf.cells[self.off]
        if isinstance(cell, str):
            return cell
        chars = []
        for i in range(self.off, self.buf.length):
            v = self.buf.cells[i]
            if v == 0:
                break
            chars.append(chr(int(v) & 0xFF))
        return "".join(chars)

    def __eq__(self, other) -> bool:
        if other is None:
            return False
        return (
            isinstance(other, Pointer)
            and self.buf is other.buf
            and self.off == other.off
        )

    def __hash__(self) -> int:
        return hash((id(self.buf), self.off))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Pointer({self.buf!r}+{self.off})"


class ScalarRef:
    """``&scalar_variable`` — a reference into an environment dict."""

    __slots__ = ("env", "name")

    def __init__(self, env: dict, name: str) -> None:
        self.env = env
        self.name = name

    def get(self):
        return self.env[self.name]

    def set(self, value) -> None:
        self.env[self.name] = value


class ElemRef:
    """``&array[i]`` — a reference to one buffer element."""

    __slots__ = ("ptr",)

    def __init__(self, ptr: Pointer) -> None:
        self.ptr = ptr


class MemoryManager:
    """Tracks all live buffers of a guest program run."""

    def __init__(self) -> None:
        self.buffers: List[Buffer] = []
        self.host_bytes = 0
        self.device_bytes = 0
        self.byte_limit = 1 << 30  # 1 GiB of simulated memory per space

    # ------------------------------------------------------------------
    def alloc(
        self,
        nbytes: int,
        elem_type: ty.Type,
        space: str,
        label: str = "",
    ) -> Pointer:
        nbytes = int(nbytes)
        if nbytes < 0:
            raise GuestRuntimeError(
                _SEGFAULT, detail=f"allocation of negative size {nbytes}"
            )
        elem_bytes = max(1, elem_type.size)
        length = max(0, nbytes // elem_bytes)
        is_float = elem_type.kind in (ty.Kind.FLOAT, ty.Kind.DOUBLE)
        if space == "host":
            self.host_bytes += nbytes
            if self.host_bytes > self.byte_limit:
                raise GuestRuntimeError(
                    "std::bad_alloc", detail="simulated host memory exhausted"
                )
        else:
            self.device_bytes += nbytes
            if self.device_bytes > self.byte_limit:
                raise GuestRuntimeError(
                    "CUDA error: out of memory",
                    detail="simulated device memory exhausted",
                )
        buf = Buffer(length, elem_bytes, is_float, space, label)
        self.buffers.append(buf)
        return Pointer(buf, 0)

    def free(self, ptr: Optional[Pointer], space: str) -> None:
        if ptr is None:
            return  # free(NULL) is a no-op
        if not isinstance(ptr, Pointer):
            raise GuestRuntimeError(_SEGFAULT, detail="free of a non-pointer value")
        buf = ptr.buf
        if buf.freed:
            raise GuestRuntimeError(
                "free(): double free detected in tcache 2\nAborted (core dumped)"
                if space == "host"
                else "CUDA error: invalid argument",
                detail=f"double free of buffer {buf.label or '?'}",
            )
        if buf.space != space:
            api = "free()" if space == "host" else "cudaFree()"
            raise GuestRuntimeError(
                _SEGFAULT if space == "host" else "CUDA error: invalid argument",
                detail=f"{api} called on a {buf.space} pointer",
            )
        buf.freed = True
        if space == "host":
            self.host_bytes -= buf.nbytes
        else:
            self.device_bytes -= buf.nbytes

    # ------------------------------------------------------------------
    # Access checking (hot path — called from compiled closures)
    # ------------------------------------------------------------------
    @staticmethod
    def check_access(buf: Buffer, index: int, device: bool) -> Buffer:
        """Validate an element access; returns the buffer to actually touch.

        When ``device`` is true and the buffer is host memory with an active
        shadow (OpenMP mapping), accesses are redirected to the shadow.
        """
        if buf.freed:
            raise GuestRuntimeError(
                _ILLEGAL if device else _SEGFAULT,
                detail=f"use-after-free of buffer {buf.label or '?'}",
            )
        if device:
            if buf.space == "host":
                shadow = buf.shadow
                if shadow is not None:
                    buf = shadow
                else:
                    raise GuestRuntimeError(
                        _ILLEGAL,
                        detail=(
                            f"device code dereferenced unmapped host pointer "
                            f"{buf.label or '?'}"
                        ),
                    )
        else:
            if buf.space == "device":
                raise GuestRuntimeError(
                    _SEGFAULT,
                    detail=(
                        f"host code dereferenced device pointer {buf.label or '?'}"
                    ),
                )
        if index < 0 or index >= buf.length:
            raise GuestRuntimeError(
                _ILLEGAL if device else _SEGFAULT,
                detail=(
                    f"index {index} out of bounds for buffer "
                    f"{buf.label or '?'} of length {buf.length}"
                ),
            )
        return buf

    # ------------------------------------------------------------------
    # OpenMP mapping
    # ------------------------------------------------------------------
    def map_enter(self, buf: Buffer, kind: str) -> int:
        """Enter a map for ``buf``; returns bytes transferred host->device."""
        if buf.freed:
            raise GuestRuntimeError(
                _SEGFAULT, detail="map clause names a freed buffer"
            )
        buf.map_depth += 1
        buf.map_kinds.append(kind)
        if buf.map_depth > 1:
            return 0  # already present: no transfer (present-table semantics)
        shadow = Buffer(buf.length, buf.elem_bytes, buf.is_float, "device",
                        label=f"{buf.label}@device")
        buf.shadow = shadow
        if kind in ("to", "tofrom"):
            shadow.cells[:] = buf.cells
            return buf.nbytes
        return 0

    def map_exit(self, buf: Buffer) -> int:
        """Exit a map for ``buf``; returns bytes transferred device->host."""
        if buf.map_depth <= 0:
            return 0
        kind = buf.map_kinds.pop()
        buf.map_depth -= 1
        if buf.map_depth > 0:
            return 0
        shadow = buf.shadow
        buf.shadow = None
        transferred = 0
        if shadow is not None and kind in ("from", "tofrom") and not buf.freed:
            buf.cells[:] = shadow.cells
            transferred = buf.nbytes
        return transferred

    def live_bytes(self) -> int:
        return self.host_bytes + self.device_bytes
