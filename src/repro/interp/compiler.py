"""AST -> Python-closure compiler.

Each expression compiles to ``fn(env) -> value`` and each statement to
``fn(env) -> signal`` where the signal is ``None`` (fall through), ``BREAK``,
``CONTINUE`` or ``(RETURN, value)``.  Compiling once and executing closures
is the standard fast-tree-walk technique: the per-node dataclass dispatch
cost is paid at compile time instead of once per executed statement, which
matters when a kernel body runs for thousands of simulated threads.

Kernels containing ``__syncthreads()`` are compiled in *generator mode*
(each statement is a generator that yields ``BARRIER``), so the executor can
interleave the threads of a block at barrier granularity.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GuestRuntimeError, InterpreterError
from repro.interp.memory import ElemRef, MemoryManager, Pointer, ScalarRef
from repro.interp.values import c_div, c_mod, truthy
from repro.minilang import ast
from repro.minilang import types as ty
from repro.minilang.builtins import BUILTINS, CONSTANTS, GEOMETRY_BUILTINS

BREAK = "__break__"
CONTINUE = "__continue__"
RETURN = "__return__"
BARRIER = "__barrier__"

_SEGFAULT = "Segmentation fault (core dumped)"


class GuestExit(Exception):
    """Raised by the ``exit()`` builtin to unwind the guest program."""

    def __init__(self, code: int) -> None:
        super().__init__(f"exit({code})")
        self.code = code


def _contains_barrier(stmt: ast.Stmt) -> bool:
    return any(isinstance(s, ast.SyncThreads) for s in ast.walk_stmts(stmt))


def _contains_atomics(stmt: ast.Stmt) -> bool:
    return any(
        isinstance(e, ast.Call) and e.callee.startswith("atomic")
        for e in ast.walk_exprs(stmt)
    )


def collect_local_types(fn: ast.FuncDef) -> Dict[str, ty.Type]:
    """Static name -> type map for a function (params + all declarations).

    Scopes are flattened; the semantic analyzer has already validated scoping,
    and redeclaration with a *different* type across sibling scopes is outside
    the supported subset.
    """
    out: Dict[str, ty.Type] = {}
    for p in fn.params:
        if p.name:
            out[p.name] = p.type
    for s in ast.walk_stmts(fn.body):
        if isinstance(s, ast.VarDecl):
            t = s.type.pointer_to() if s.array_size is not None else s.type
            out[s.name] = t
        elif isinstance(s, ast.For) and isinstance(s.init, ast.VarDecl):
            d = s.init
            out[d.name] = d.type.pointer_to() if d.array_size is not None else d.type
    return out


class FunctionCompiler:
    """Compiles one function body against a runner's context."""

    def __init__(self, runner, fn: ast.FuncDef) -> None:
        self.runner = runner
        self.ctx = runner.ctx
        self.fn = fn
        self.types = collect_local_types(fn)
        self.is_device = fn.qualifier in ("__global__", "__device__")
        self.barrier_mode = fn.is_kernel and _contains_barrier(fn.body)
        #: Kernels free of both barriers and atomics qualify for the
        #: executor's flattened single-pass launch schedule.
        self.has_atomics = fn.is_kernel and _contains_atomics(fn.body)
        self.shared_decls: List[ast.VarDecl] = [
            s for s in ast.walk_stmts(fn.body)
            if isinstance(s, ast.VarDecl) and s.shared
        ]

    # ------------------------------------------------------------------
    def compile_body(self) -> Callable:
        """Compile the function body; returns stmt-closure or generator fn."""
        if self.barrier_mode:
            return self.compile_stmt_gen(self.fn.body)
        return self.compile_stmt(self.fn.body)

    def static_type(self, expr: ast.Expr) -> Optional[ty.Type]:
        """Best-effort static type (enough for allocation/truncation)."""
        if isinstance(expr, ast.Ident):
            t = self.types.get(expr.name)
            if t is not None:
                return t
            g = self.runner.global_types.get(expr.name)
            return g
        if isinstance(expr, ast.Cast):
            return expr.type
        if isinstance(expr, ast.Index):
            base = self.static_type(expr.base)
            if base is not None and base.is_pointer:
                return base.pointee()
            return None
        if isinstance(expr, ast.Unary) and expr.op == "*":
            base = self.static_type(expr.operand)
            if base is not None and base.is_pointer:
                return base.pointee()
        if isinstance(expr, ast.Unary) and expr.op == "&":
            base = self.static_type(expr.operand)
            if base is not None:
                return base.pointer_to()
        return None

    # ==================================================================
    # Expressions
    # ==================================================================
    def compile_expr(self, e: ast.Expr) -> Callable:
        if isinstance(e, ast.IntLit):
            v = e.value
            return lambda env: v
        if isinstance(e, ast.FloatLit):
            v = e.value
            return lambda env: v
        if isinstance(e, ast.StrLit):
            v = e.value
            return lambda env: v
        if isinstance(e, ast.CharLit):
            v = ord(e.value) if e.value else 0
            return lambda env: v
        if isinstance(e, ast.BoolLit):
            v = 1 if e.value else 0
            return lambda env: v
        if isinstance(e, ast.NullLit):
            return lambda env: None
        if isinstance(e, ast.Ident):
            return self._compile_ident(e)
        if isinstance(e, ast.Member):
            return self._compile_member(e)
        if isinstance(e, ast.Index):
            return self._compile_index_load(e)
        if isinstance(e, ast.Unary):
            return self._compile_unary(e)
        if isinstance(e, ast.Postfix):
            return self._compile_postfix(e)
        if isinstance(e, ast.Binary):
            return self._compile_binary(e)
        if isinstance(e, ast.Assign):
            return self._compile_assign(e)
        if isinstance(e, ast.Ternary):
            cond = self.compile_expr(e.cond)
            then = self.compile_expr(e.then)
            other = self.compile_expr(e.other)
            return lambda env: then(env) if truthy(cond(env)) else other(env)
        if isinstance(e, ast.Call):
            return self._compile_call(e)
        if isinstance(e, ast.Launch):
            return self._compile_launch(e)
        if isinstance(e, ast.Cast):
            return self._compile_cast(e)
        if isinstance(e, ast.SizeOf):
            v = e.type.size
            return lambda env: v
        raise InterpreterError(f"cannot compile expression {type(e).__name__}")

    # ------------------------------------------------------------------
    def _compile_ident(self, e: ast.Ident) -> Callable:
        name = e.name
        if name in self.types:
            def local_load(env, _n=name):
                return env[_n]
            return local_load
        if name in self.runner.global_env or name in self.runner.global_types:
            genv = self.runner.global_env
            def global_load(env, _n=name, _g=genv):
                return _g[_n]
            return global_load
        if name in CONSTANTS:
            v = CONSTANTS[name][0]
            return lambda env: v
        if name in GEOMETRY_BUILTINS:
            # Bare geometry name (no .x): treat as its .x component.
            return self._geom_closure(name, "x")
        # Unbound name that slipped past semantics (should not happen on a
        # clean compile): fault at run time like a linker would.
        def unbound(env, _n=name):
            raise GuestRuntimeError(
                _SEGFAULT, detail=f"use of unbound identifier '{_n}'"
            )
        return unbound

    def _geom_closure(self, name: str, field: str) -> Callable:
        ctx = self.ctx
        if field == "x":
            idx = {"threadIdx": 0, "blockIdx": 1, "blockDim": 2, "gridDim": 3}[name]
            return lambda env: ctx.geom[idx]
        # 1-D model: y/z indices are 0, y/z dims are 1.
        v = 1 if name in ("blockDim", "gridDim") else 0
        return lambda env: v

    def _compile_member(self, e: ast.Member) -> Callable:
        if isinstance(e.obj, ast.Ident) and e.obj.name in GEOMETRY_BUILTINS:
            return self._geom_closure(e.obj.name, e.field_name)
        raise InterpreterError("member access on non-geometry object")

    # ------------------------------------------------------------------
    def _compile_index_load(self, e: ast.Index) -> Callable:
        ctx = self.ctx
        base = self.compile_expr(e.base)
        index = self.compile_expr(e.index)
        check = MemoryManager.check_access

        def load(env):
            p = base(env)
            if p is None:
                raise GuestRuntimeError(
                    _SEGFAULT, detail="NULL pointer dereference"
                )
            i = int(index(env))
            buf = check(p.buf, p.off + i, ctx.space == "device")
            c = ctx.counters
            c.load_bytes += buf.elem_bytes
            c.ops += 1
            return buf.cells[p.off + i]
        return load

    def _compile_index_store(self, e: ast.Index) -> Callable:
        """Returns store(env, value)."""
        ctx = self.ctx
        base = self.compile_expr(e.base)
        index = self.compile_expr(e.index)
        check = MemoryManager.check_access

        def store(env, value):
            p = base(env)
            if p is None:
                raise GuestRuntimeError(
                    _SEGFAULT, detail="NULL pointer dereference"
                )
            i = int(index(env))
            buf = check(p.buf, p.off + i, ctx.space == "device")
            c = ctx.counters
            c.store_bytes += buf.elem_bytes
            if buf.is_float:
                buf.cells[p.off + i] = float(value)
            else:
                buf.cells[p.off + i] = int(value)
            return value
        return store

    # ------------------------------------------------------------------
    def _compile_unary(self, e: ast.Unary) -> Callable:
        ctx = self.ctx
        op = e.op
        if op == "&":
            return self._compile_addressof(e.operand)
        if op == "*":
            # *p  ==  p[0]
            synthetic = ast.Index(base=e.operand, index=ast.IntLit(0, "0"))
            synthetic.span = e.span
            return self._compile_index_load(synthetic)
        operand = self.compile_expr(e.operand)
        if op == "-":
            def neg(env):
                ctx.counters.ops += 1
                return -operand(env)
            return neg
        if op == "!":
            return lambda env: 0 if truthy(operand(env)) else 1
        if op == "~":
            def bnot(env):
                ctx.counters.ops += 1
                return ~int(operand(env))
            return bnot
        if op in ("++", "--"):
            delta = 1 if op == "++" else -1
            _, rmw = self._compile_rmw(e.operand)
            def incr(env):
                return rmw(env, delta, False)
            return incr
        raise InterpreterError(f"cannot compile unary op {op}")

    def _compile_postfix(self, e: ast.Postfix) -> Callable:
        delta = 1 if e.op == "++" else -1
        _, rmw = self._compile_rmw(e.operand)
        def post(env):
            return rmw(env, delta, True)
        return post

    def _compile_rmw(self, target: ast.Expr) -> Tuple[Callable, Callable]:
        """Read-modify-write helper for ++/--.

        Returns (load, rmw) where rmw(env, delta, want_old) updates and
        returns old or new value.
        """
        ctx = self.ctx
        if isinstance(target, ast.Ident):
            name = target.name
            t = self.types.get(name)
            if t is None and name in self.runner.global_types:
                genv = self.runner.global_env
                def g_rmw(env, delta, want_old, _n=name, _g=genv):
                    ctx.counters.ops += 1
                    old = _g[_n]
                    if isinstance(old, Pointer):
                        new = old.offset_by(delta)
                    else:
                        new = old + delta
                    _g[_n] = new
                    return old if want_old else new
                return (lambda env: genv[name]), g_rmw

            def l_rmw(env, delta, want_old, _n=name):
                ctx.counters.ops += 1
                old = env[_n]
                if isinstance(old, Pointer):
                    new = old.offset_by(delta)
                else:
                    new = old + delta
                env[_n] = new
                return old if want_old else new
            return (lambda env: env[name]), l_rmw

        if isinstance(target, ast.Index) or (
            isinstance(target, ast.Unary) and target.op == "*"
        ):
            if isinstance(target, ast.Unary):
                target = ast.Index(base=target.operand, index=ast.IntLit(0, "0"))
            load = self._compile_index_load(target)
            store = self._compile_index_store(target)

            def m_rmw(env, delta, want_old):
                ctx.counters.ops += 1
                old = load(env)
                new = old + delta
                store(env, new)
                return old if want_old else new
            return load, m_rmw
        raise InterpreterError("unsupported increment/decrement target")

    def _compile_addressof(self, operand: ast.Expr) -> Callable:
        if isinstance(operand, ast.Ident):
            name = operand.name
            if name in self.types:
                t = self.types[name]
                if t.is_pointer:
                    # &ptr: reference to the pointer variable itself
                    # (cudaMalloc(&d_a, ...) pattern).
                    return lambda env: ScalarRef(env, name)
                return lambda env: ScalarRef(env, name)
            genv = self.runner.global_env
            return lambda env: ScalarRef(genv, name)
        if isinstance(operand, ast.Index):
            base = self.compile_expr(operand.base)
            index = self.compile_expr(operand.index)

            def elem_ref(env):
                p = base(env)
                if p is None:
                    raise GuestRuntimeError(
                        _SEGFAULT, detail="NULL pointer dereference in '&expr[i]'"
                    )
                return ElemRef(p.offset_by(int(index(env))))
            return elem_ref
        if isinstance(operand, ast.Unary) and operand.op == "*":
            inner = self.compile_expr(operand.operand)
            def deref_ref(env):
                p = inner(env)
                return ElemRef(p)
            return deref_ref
        raise InterpreterError("unsupported operand of '&'")

    # ------------------------------------------------------------------
    def _compile_binary(self, e: ast.Binary) -> Callable:
        ctx = self.ctx
        op = e.op
        left = self.compile_expr(e.left)
        right = self.compile_expr(e.right)

        if op == "&&":
            return lambda env: 1 if (truthy(left(env)) and truthy(right(env))) else 0
        if op == "||":
            return lambda env: 1 if (truthy(left(env)) or truthy(right(env))) else 0

        if op in ("==", "!="):
            eq = op == "=="
            def cmp_eq(env):
                ctx.counters.ops += 1
                a, b = left(env), right(env)
                if a is None or b is None:
                    same = (a is None) and (b is None)
                else:
                    same = a == b
                return 1 if same == eq else 0
            return cmp_eq
        if op in ("<", ">", "<=", ">="):
            import operator as _op
            fn = {"<": _op.lt, ">": _op.gt, "<=": _op.le, ">=": _op.ge}[op]
            def cmp(env):
                ctx.counters.ops += 1
                return 1 if fn(left(env), right(env)) else 0
            return cmp

        if op == "+":
            def add(env):
                ctx.counters.ops += 1
                a, b = left(env), right(env)
                if isinstance(a, Pointer):
                    return a.offset_by(int(b))
                if isinstance(b, Pointer):
                    return b.offset_by(int(a))
                return a + b
            return add
        if op == "-":
            def sub(env):
                ctx.counters.ops += 1
                a, b = left(env), right(env)
                if isinstance(a, Pointer):
                    if isinstance(b, Pointer):
                        return a.off - b.off
                    return a.offset_by(-int(b))
                return a - b
            return sub
        if op == "*":
            def mul(env):
                ctx.counters.ops += 1
                return left(env) * right(env)
            return mul
        if op == "/":
            def div(env):
                ctx.counters.ops += 1
                return c_div(left(env), right(env))
            return div
        if op == "%":
            def mod(env):
                ctx.counters.ops += 1
                return c_mod(left(env), right(env))
            return mod
        if op in ("&", "|", "^", "<<", ">>"):
            import operator as _op
            fn = {"&": _op.and_, "|": _op.or_, "^": _op.xor,
                  "<<": _op.lshift, ">>": _op.rshift}[op]
            def bitop(env):
                ctx.counters.ops += 1
                return fn(int(left(env)), int(right(env)))
            return bitop
        raise InterpreterError(f"cannot compile binary op {op}")

    # ------------------------------------------------------------------
    def _compile_assign(self, e: ast.Assign) -> Callable:
        ctx = self.ctx
        op = e.op
        target = e.target

        # Allocation idiom: target = (T*)malloc(...) etc.
        value_c = self._compile_value_for(target, e.value)

        if isinstance(target, ast.Ident):
            name = target.name
            t = self.types.get(name)
            is_global = t is None and name in self.runner.global_types
            if is_global:
                t = self.runner.global_types[name]
            truncate = t is not None and t.is_integer
            env_dict = self.runner.global_env if is_global else None

            if op == "=":
                def set_ident(env, _n=name, _g=env_dict, _tr=truncate):
                    v = value_c(env)
                    if _tr and isinstance(v, float):
                        v = int(v)
                    (_g if _g is not None else env)[_n] = v
                    return v
                return set_ident

            base_op = op[:-1]
            binop = self._binop_fn(base_op)

            def upd_ident(env, _n=name, _g=env_dict, _tr=truncate):
                ctx.counters.ops += 1
                d = _g if _g is not None else env
                old = d[_n]
                v = value_c(env)
                if isinstance(old, Pointer):
                    new = old.offset_by(int(v) if base_op == "+" else -int(v))
                else:
                    new = binop(old, v)
                if _tr and isinstance(new, float):
                    new = int(new)
                d[_n] = new
                return new
            return upd_ident

        if isinstance(target, ast.Unary) and target.op == "*":
            target = ast.Index(base=target.operand, index=ast.IntLit(0, "0"))
        if isinstance(target, ast.Index):
            store = self._compile_index_store(target)
            if op == "=":
                def set_elem(env):
                    return store(env, value_c(env))
                return set_elem
            load = self._compile_index_load(target)
            binop = self._binop_fn(op[:-1])

            def upd_elem(env):
                ctx.counters.ops += 1
                return store(env, binop(load(env), value_c(env)))
            return upd_elem

        raise InterpreterError(
            f"unsupported assignment target {type(target).__name__}"
        )

    @staticmethod
    def _binop_fn(op: str) -> Callable:
        import operator as _op
        if op == "/":
            return c_div
        if op == "%":
            return c_mod
        if op in ("<<", ">>", "&", "|", "^"):
            fn = {"<<": _op.lshift, ">>": _op.rshift, "&": _op.and_,
                  "|": _op.or_, "^": _op.xor}[op]
            return lambda a, b: fn(int(a), int(b))
        return {"+": _op.add, "-": _op.sub, "*": _op.mul}[op]

    # ------------------------------------------------------------------
    def _compile_value_for(self, target: Optional[ast.Expr], value: ast.Expr) -> Callable:
        """Compile an rvalue, handling the malloc-allocation idiom with the
        element type taken from the assignment target when needed."""
        alloc = self._try_compile_alloc(value, self.static_type(target) if target is not None else None)
        if alloc is not None:
            return alloc
        return self.compile_expr(value)

    def _try_compile_alloc(
        self, value: ast.Expr, target_type: Optional[ty.Type]
    ) -> Optional[Callable]:
        """Recognize ``(T*)malloc(n)`` / ``malloc(n)`` / ``calloc(n, s)``."""
        inner = value
        cast_type: Optional[ty.Type] = None
        if isinstance(inner, ast.Cast):
            cast_type = inner.type
            inner = inner.operand
        if not isinstance(inner, ast.Call) or inner.callee not in ("malloc", "calloc"):
            return None
        elem = None
        if cast_type is not None and cast_type.is_pointer:
            elem = cast_type.pointee()
        elif target_type is not None and target_type.is_pointer:
            elem = target_type.pointee()
        if elem is None or elem.is_pointer:
            elem = ty.CHAR  # untyped allocation: byte-granular
        runner = self.runner
        if inner.callee == "malloc":
            nbytes_c = self.compile_expr(inner.args[0])
            def do_malloc(env):
                return runner.host_alloc(int(nbytes_c(env)), elem)
            return do_malloc
        count_c = self.compile_expr(inner.args[0])
        size_c = self.compile_expr(inner.args[1])
        def do_calloc(env):
            return runner.host_alloc(int(count_c(env)) * int(size_c(env)), elem)
        return do_calloc

    def _compile_cast(self, e: ast.Cast) -> Callable:
        alloc = self._try_compile_alloc(e, None)
        if alloc is not None:
            return alloc
        operand = self.compile_expr(e.operand)
        t = e.type
        if t.is_pointer:
            return operand  # pointer reinterpretation: value passes through
        if t.is_integer:
            def to_int(env):
                v = operand(env)
                return int(v) if not isinstance(v, (Pointer, str)) else v
            return to_int
        if t.is_real:
            def to_float(env):
                return float(operand(env))
            return to_float
        return operand

    # ------------------------------------------------------------------
    def _compile_call(self, e: ast.Call) -> Callable:
        name = e.callee
        runner = self.runner
        ctx = self.ctx
        args_c = [self.compile_expr(a) for a in e.args]

        # User-defined function?
        if name in runner.program_functions:
            fn_def = runner.program_functions[name]
            param_names = [p.name for p in fn_def.params]
            truncations = [p.type.is_integer for p in fn_def.params]

            def user_call(env):
                ctx.consume_steps()
                callee = runner.compiled(name)
                call_env = {}
                for pname, trunc, ac in zip(param_names, truncations, args_c):
                    v = ac(env)
                    if trunc and isinstance(v, float):
                        v = int(v)
                    call_env[pname] = v
                return callee(call_env)
            return user_call

        b = BUILTINS.get(name)
        if b is None:
            def missing(env, _n=name):
                raise GuestRuntimeError(
                    _SEGFAULT, detail=f"call to unknown function '{_n}'"
                )
            return missing

        # Fast paths for pure math.
        if b.py is not None:
            py = b.py
            count = 4 if b.min_args == 1 and name not in ("abs", "fabsf", "fabs") else 1
            if len(args_c) == 1:
                a0 = args_c[0]
                def math1(env):
                    ctx.counters.ops += count
                    try:
                        return py(a0(env))
                    except (ValueError, OverflowError):
                        return math.nan
                return math1
            if len(args_c) == 2:
                a0, a1 = args_c
                def math2(env):
                    ctx.counters.ops += count
                    try:
                        return py(a0(env), a1(env))
                    except (ValueError, OverflowError):
                        return math.nan
                return math2

        # Everything else goes through the runner (I/O, memory, CUDA API).
        elem_hint = self._call_elem_hint(e)

        def runner_call(env):
            return runner.call_builtin(name, [ac(env) for ac in args_c], elem_hint)
        return runner_call

    def _call_elem_hint(self, e: ast.Call) -> Optional[ty.Type]:
        """Element type hint for cudaMalloc-style calls, from arg 0's type."""
        if e.callee not in ("cudaMalloc",):
            return None
        arg = e.args[0]
        if isinstance(arg, ast.Cast):
            arg = arg.operand
        if isinstance(arg, ast.Unary) and arg.op == "&":
            t = self.static_type(arg.operand)
            if t is not None and t.is_pointer:
                return t.pointee()
        return None

    def _compile_launch(self, e: ast.Launch) -> Callable:
        runner = self.runner
        grid_c = self.compile_expr(e.grid)
        block_c = self.compile_expr(e.block)
        args_c = [self.compile_expr(a) for a in e.args]
        name = e.kernel

        def do_launch(env):
            runner.launch(
                name,
                int(grid_c(env)),
                int(block_c(env)),
                [ac(env) for ac in args_c],
            )
            return None
        return do_launch

    # ==================================================================
    # Statements (fast mode)
    # ==================================================================
    def compile_stmt(self, s: ast.Stmt) -> Callable:
        ctx = self.ctx

        if isinstance(s, ast.Block):
            stmts = [self.compile_stmt(x) for x in s.stmts]
            if not stmts:
                return lambda env: None
            if len(stmts) == 1:
                return stmts[0]

            def block(env):
                for st in stmts:
                    sig = st(env)
                    if sig is not None:
                        return sig
                return None
            return block

        if isinstance(s, ast.VarDecl):
            return self._compile_vardecl(s)

        if isinstance(s, ast.ExprStmt):
            expr = self.compile_expr(s.expr)

            def expr_stmt(env):
                expr(env)
                return None
            return expr_stmt

        if isinstance(s, ast.If):
            cond = self.compile_expr(s.cond)
            then = self.compile_stmt(s.then)
            other = self.compile_stmt(s.other) if s.other is not None else None

            if other is None:
                def if_stmt(env):
                    if truthy(cond(env)):
                        return then(env)
                    return None
                return if_stmt

            def if_else(env):
                if truthy(cond(env)):
                    return then(env)
                return other(env)
            return if_else

        if isinstance(s, ast.For):
            init = self.compile_stmt(s.init) if s.init is not None else None
            cond = self.compile_expr(s.cond) if s.cond is not None else None
            step = self.compile_expr(s.step) if s.step is not None else None
            body = self.compile_stmt(s.body)

            def for_stmt(env):
                if init is not None:
                    init(env)
                while cond is None or truthy(cond(env)):
                    ctx.steps_left -= 1
                    if ctx.steps_left < 0:
                        ctx.consume_steps(0)
                    sig = body(env)
                    if sig is not None:
                        if sig is BREAK:
                            return None
                        if sig is not CONTINUE:
                            return sig
                    if step is not None:
                        step(env)
                return None
            return for_stmt

        if isinstance(s, ast.While):
            cond = self.compile_expr(s.cond)
            body = self.compile_stmt(s.body)

            def while_stmt(env):
                while truthy(cond(env)):
                    ctx.steps_left -= 1
                    if ctx.steps_left < 0:
                        ctx.consume_steps(0)
                    sig = body(env)
                    if sig is not None:
                        if sig is BREAK:
                            return None
                        if sig is not CONTINUE:
                            return sig
                return None
            return while_stmt

        if isinstance(s, ast.DoWhile):
            cond = self.compile_expr(s.cond)
            body = self.compile_stmt(s.body)

            def do_while(env):
                while True:
                    ctx.steps_left -= 1
                    if ctx.steps_left < 0:
                        ctx.consume_steps(0)
                    sig = body(env)
                    if sig is not None:
                        if sig is BREAK:
                            return None
                        if sig is not CONTINUE:
                            return sig
                    if not truthy(cond(env)):
                        return None
            return do_while

        if isinstance(s, ast.Return):
            if s.value is None:
                return lambda env: (RETURN, None)
            value = self.compile_expr(s.value)
            trunc = self.fn.return_type.is_integer

            def ret(env):
                v = value(env)
                if trunc and isinstance(v, float):
                    v = int(v)
                return (RETURN, v)
            return ret

        if isinstance(s, ast.Break):
            return lambda env: BREAK
        if isinstance(s, ast.Continue):
            return lambda env: CONTINUE

        if isinstance(s, ast.Pragma):
            return self.runner.compile_pragma(self, s)

        if isinstance(s, ast.SyncThreads):
            # Barrier in a non-barrier-mode compile: only reachable if a
            # device function contains one (unsupported subset).
            def bad_barrier(env):
                raise GuestRuntimeError(
                    "CUDA error: unspecified launch failure",
                    detail="__syncthreads() outside a kernel body",
                )
            return bad_barrier

        raise InterpreterError(f"cannot compile statement {type(s).__name__}")

    def _compile_vardecl(self, s: ast.VarDecl) -> Callable:
        name = s.name
        if s.shared:
            # Shared declarations are hoisted by the launcher; the statement
            # itself is a no-op (the name is pre-bound in the thread env).
            return lambda env: None
        if s.array_size is not None:
            size_c = self.compile_expr(s.array_size)
            elem = s.type
            runner = self.runner
            ctx = self.ctx

            def decl_array(env):
                n = int(size_c(env))
                # Local arrays live in whichever space the declaring code is
                # executing in (a kernel-local array is device memory; the
                # same declaration in an OpenMP target loop body is
                # device-private too).
                ptr = runner.stack_alloc(n, elem, ctx.space, label=name)
                env[name] = ptr
                return None
            return decl_array

        if s.init is not None:
            value_target = ast.Ident(name=name)
            value_target.span = s.span
            init_c = self._compile_value_for(value_target, s.init)
            trunc = s.type.is_integer and not s.type.is_pointer

            def decl_init(env):
                v = init_c(env)
                if trunc and isinstance(v, float):
                    v = int(v)
                env[name] = v
                return None
            return decl_init

        default = 0.0 if s.type.is_real else (None if s.type.is_pointer else 0)

        def decl_default(env):
            env[name] = default
            return None
        return decl_default

    # ==================================================================
    # Statements (generator mode, for kernels with __syncthreads)
    # ==================================================================
    def compile_stmt_gen(self, s: ast.Stmt) -> Callable:
        ctx = self.ctx

        if isinstance(s, ast.SyncThreads):
            def barrier_gen(env):
                yield BARRIER
                return None
            return barrier_gen

        if isinstance(s, ast.Block):
            stmts = [self.compile_stmt_gen(x) for x in s.stmts]

            def block_gen(env):
                for st in stmts:
                    sig = yield from st(env)
                    if sig is not None:
                        return sig
                return None
            return block_gen

        if isinstance(s, ast.If):
            cond = self.compile_expr(s.cond)
            then = self.compile_stmt_gen(s.then)
            other = self.compile_stmt_gen(s.other) if s.other is not None else None

            def if_gen(env):
                if truthy(cond(env)):
                    return (yield from then(env))
                if other is not None:
                    return (yield from other(env))
                return None
            return if_gen

        if isinstance(s, ast.For):
            init = self.compile_stmt(s.init) if s.init is not None else None
            cond = self.compile_expr(s.cond) if s.cond is not None else None
            step = self.compile_expr(s.step) if s.step is not None else None
            body = self.compile_stmt_gen(s.body)

            def for_gen(env):
                if init is not None:
                    init(env)
                while cond is None or truthy(cond(env)):
                    ctx.consume_steps()
                    sig = yield from body(env)
                    if sig is not None:
                        if sig is BREAK:
                            return None
                        if sig is not CONTINUE:
                            return sig
                    if step is not None:
                        step(env)
                return None
            return for_gen

        if isinstance(s, ast.While):
            cond = self.compile_expr(s.cond)
            body = self.compile_stmt_gen(s.body)

            def while_gen(env):
                while truthy(cond(env)):
                    ctx.consume_steps()
                    sig = yield from body(env)
                    if sig is not None:
                        if sig is BREAK:
                            return None
                        if sig is not CONTINUE:
                            return sig
                return None
            return while_gen

        if isinstance(s, ast.DoWhile):
            cond = self.compile_expr(s.cond)
            body = self.compile_stmt_gen(s.body)

            def dowhile_gen(env):
                while True:
                    ctx.consume_steps()
                    sig = yield from body(env)
                    if sig is not None:
                        if sig is BREAK:
                            return None
                        if sig is not CONTINUE:
                            return sig
                    if not truthy(cond(env)):
                        return None
            return dowhile_gen

        # Statements with no barriers inside: reuse the fast compiler.
        plain = self.compile_stmt(s)

        def plain_gen(env):
            return plain(env)
            yield  # pragma: no cover - makes this a generator function
        return plain_gen
