"""Execution context shared by compiled closures and the executor."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.errors import ResourceLimitExceeded
from repro.gpu.stats import ExecutionProfile, OpCounters
from repro.interp.memory import MemoryManager
from repro.telemetry.log import get_logger

logger = get_logger("interp")


@dataclass(frozen=True)
class Limits:
    """Resource limits for a guest run.

    ``max_steps`` bounds loop iterations + function calls; an LLM-injected
    infinite loop then surfaces as a (deterministic) timeout, which is the
    execution-error signal the LASSI loop would see from a hung process.
    """

    max_steps: int = 30_000_000
    max_stdout_bytes: int = 4_000_000


class ExecContext:
    """Mutable state of one guest program run."""

    __slots__ = (
        "memory", "profile", "counters", "stdout_parts", "stdout_bytes",
        "space", "geom", "rand_state", "steps_left", "limits", "runner",
        "exit_code",
    )

    def __init__(self, limits: Optional[Limits] = None) -> None:
        self.memory = MemoryManager()
        self.profile = ExecutionProfile()
        self.counters: OpCounters = self.profile.host
        self.stdout_parts: List[str] = []
        self.stdout_bytes = 0
        self.space = "host"  # "host" | "device"
        #: (threadIdx.x, blockIdx.x, blockDim.x, gridDim.x) in device code.
        self.geom = (0, 0, 1, 1)
        self.rand_state = 1  # glibc-style LCG seed, srand(1) default
        self.limits = limits or Limits()
        self.steps_left = self.limits.max_steps
        self.runner = None  # back-reference set by ProgramRunner
        self.exit_code = 0

    # -- stdout ---------------------------------------------------------
    def write_stdout(self, text: str) -> None:
        self.stdout_bytes += len(text)
        if self.stdout_bytes > self.limits.max_stdout_bytes:
            raise ResourceLimitExceeded(
                "output limit exceeded",
                detail=f"program wrote more than {self.limits.max_stdout_bytes} bytes",
            )
        self.stdout_parts.append(text)

    @property
    def stdout(self) -> str:
        return "".join(self.stdout_parts)

    # -- steps ------------------------------------------------------------
    def consume_steps(self, n: int = 1) -> None:
        self.steps_left -= n
        if self.steps_left < 0:
            logger.debug(
                "step budget of %d exhausted — killing the guest run",
                self.limits.max_steps,
            )
            raise ResourceLimitExceeded(
                "execution timed out (killed)",
                detail=f"step budget of {self.limits.max_steps} exhausted",
            )

    # -- C rand() ---------------------------------------------------------
    def c_srand(self, seed: int) -> None:
        self.rand_state = int(seed) & 0x7FFFFFFF

    def c_rand(self) -> int:
        # LCG step (glibc TYPE_0 constants) returning the *high* bits, so
        # ``rand() % small_n`` is well distributed — raw LCG low bits cycle
        # with tiny periods, which would make every benchmark histogram
        # artificially uniform.
        self.rand_state = (self.rand_state * 1103515245 + 12345) & 0x7FFFFFFF
        return (self.rand_state >> 13) & 0x3FFFF
