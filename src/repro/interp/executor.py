"""Program runner: hosts compiled code, CUDA launches, OpenMP regions.

The runner is the "operating system + device driver" of the simulation.  It
owns the execution context, performs kernel launches (with barrier-aware
thread scheduling when ``__syncthreads`` is present), implements the CUDA
runtime API and the OpenMP target-mapping semantics, and records every
profile event the performance model consumes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.errors import GuestRuntimeError, InterpreterError
from repro.gpu.stats import (
    ExecutionProfile,
    HostParallelEvent,
    KernelEvent,
    OpCounters,
    TransferEvent,
)
from repro.interp.compiler import (
    BARRIER,
    BREAK,
    CONTINUE,
    RETURN,
    FunctionCompiler,
    GuestExit,
)
from repro.interp.context import ExecContext, Limits
from repro.interp.memory import Buffer, ElemRef, MemoryManager, Pointer, ScalarRef
from repro.interp.values import c_printf
from repro.minilang import ast
from repro.minilang import types as ty
from repro.minilang.source import Dialect

_SEGFAULT = "Segmentation fault (core dumped)"
_ILLEGAL = "CUDA error: an illegal memory access was encountered"

#: Default parallel widths for OpenMP offload directives that do not spell
#: out full ``teams distribute parallel for`` parallelism.
_OMP_DIRECTIVE_WIDTH = {
    "target teams distribute parallel for": None,  # full width
    "target parallel for": 1024,                   # one team
    "target teams distribute": 216,                # one thread per team
    "target": 1,                                   # serial on device
}


@dataclass
class RunOutcome:
    """Result of executing a guest program."""

    stdout: str
    exit_code: int
    profile: ExecutionProfile
    error: Optional[str] = None
    error_detail: Optional[str] = None
    steps_used: int = 0

    @property
    def ok(self) -> bool:
        return self.error is None and self.exit_code == 0


class ProgramRunner:
    """Compiles and runs one mini-language program."""

    def __init__(
        self,
        program: ast.Program,
        dialect: Dialect,
        limits: Optional[Limits] = None,
    ) -> None:
        self.program = program
        self.dialect = dialect
        self.ctx = ExecContext(limits)
        self.ctx.runner = self
        self.program_functions: Dict[str, ast.FuncDef] = {}
        for fn in program.functions:
            prev = self.program_functions.get(fn.name)
            if prev is None or fn.body.stmts:
                self.program_functions[fn.name] = fn
        self.global_types: Dict[str, ty.Type] = {}
        self.global_env: Dict[str, object] = {}
        self._global_decls: List[ast.VarDecl] = []
        for gv in program.globals:
            decl = gv.decl
            t = decl.type.pointer_to() if decl.array_size is not None else decl.type
            self.global_types[decl.name] = t
            self._global_decls.append(decl)
        self._compiled: Dict[str, Callable] = {}
        self._compilers: Dict[str, FunctionCompiler] = {}
        # (grid, block) -> flat thread-geometry schedule, reused across the
        # many same-shape launches an app performs (see _run_flat_kernel).
        self._geom_cache: Dict[Tuple[int, int], List[Tuple[int, int, int, int]]] = {}

    # ------------------------------------------------------------------
    # Compilation
    # ------------------------------------------------------------------
    def _compiler_for(self, name: str) -> FunctionCompiler:
        fc = self._compilers.get(name)
        if fc is None:
            fn = self.program_functions.get(name)
            if fn is None:
                raise InterpreterError(f"no function named {name!r}")
            fc = FunctionCompiler(self, fn)
            self._compilers[name] = fc
        return fc

    def compiled(self, name: str) -> Callable:
        """Return a plain ``call(env) -> value`` for a non-kernel function."""
        fn_call = self._compiled.get(name)
        if fn_call is not None:
            return fn_call
        fc = self._compiler_for(name)
        body = fc.compile_body()
        fn_def = fc.fn
        default = 0.0 if fn_def.return_type.is_real else (
            None if fn_def.return_type.is_pointer else 0
        )

        if fc.barrier_mode:
            raise InterpreterError(
                f"kernel {name!r} with barriers must go through launch()"
            )

        def call(env):
            sig = body(env)
            if isinstance(sig, tuple) and sig[0] == RETURN:
                return sig[1]
            return default

        self._compiled[name] = call
        return call

    # ------------------------------------------------------------------
    # Program entry
    # ------------------------------------------------------------------
    def run(self, argv: Optional[List[str]] = None) -> RunOutcome:
        """Execute ``main(argc, argv)``; never raises for guest faults."""
        ctx = self.ctx
        argv = ["a.out"] + list(argv or [])
        error: Optional[str] = None
        detail: Optional[str] = None
        exit_code = 0
        try:
            self._init_globals()
            main = self.program_functions.get("main")
            if main is None:
                raise GuestRuntimeError(
                    "undefined reference to 'main'", detail="no entry point"
                )
            argv_buf = Buffer(len(argv), 8, False, "host", label="argv")
            argv_buf.cells[:] = list(argv)
            env: Dict[str, object] = {}
            if len(main.params) >= 1 and main.params[0].name:
                env[main.params[0].name] = len(argv)
            if len(main.params) >= 2 and main.params[1].name:
                env[main.params[1].name] = Pointer(argv_buf, 0)
            result = self.compiled("main")(env)
            exit_code = int(result) if result is not None else 0
        except GuestExit as exc:
            exit_code = exc.code
        except GuestRuntimeError as exc:
            error = exc.message
            detail = exc.detail
            exit_code = 139 if "Segmentation" in exc.message else 1
        except RecursionError:
            error = _SEGFAULT
            detail = "stack overflow (unbounded recursion)"
            exit_code = 139
        return RunOutcome(
            stdout=ctx.stdout,
            exit_code=exit_code,
            profile=ctx.profile,
            error=error,
            error_detail=detail,
            steps_used=ctx.limits.max_steps - ctx.steps_left,
        )

    def _init_globals(self) -> None:
        for decl in self._global_decls:
            if decl.array_size is not None:
                # Global arrays need main's compiler only for constant sizes.
                fc = FunctionCompiler(
                    self, ast.FuncDef(ty.VOID, "<globals>", [], ast.Block())
                )
                n = int(fc.compile_expr(decl.array_size)({}))
                self.global_env[decl.name] = self.stack_alloc(
                    n, decl.type, "host", label=decl.name
                )
            elif decl.init is not None:
                fc = FunctionCompiler(
                    self, ast.FuncDef(ty.VOID, "<globals>", [], ast.Block())
                )
                v = fc.compile_expr(decl.init)({})
                if decl.type.is_integer and isinstance(v, float):
                    v = int(v)
                self.global_env[decl.name] = v
            else:
                self.global_env[decl.name] = (
                    0.0 if decl.type.is_real
                    else (None if decl.type.is_pointer else 0)
                )

    # ------------------------------------------------------------------
    # Memory services
    # ------------------------------------------------------------------
    def host_alloc(self, nbytes: int, elem: ty.Type) -> Pointer:
        return self.ctx.memory.alloc(nbytes, elem, "host")

    def stack_alloc(
        self, count: int, elem: ty.Type, space: str, label: str = ""
    ) -> Pointer:
        return self.ctx.memory.alloc(count * max(1, elem.size), elem, space, label)

    # ------------------------------------------------------------------
    # Builtin dispatch (cold paths; math fast paths live in the compiler)
    # ------------------------------------------------------------------
    def call_builtin(self, name: str, args: List, elem_hint: Optional[ty.Type]):
        ctx = self.ctx

        if name == "printf":
            if not args or not isinstance(args[0], str):
                raise GuestRuntimeError(
                    _SEGFAULT, detail="printf format is not a string literal"
                )
            text = c_printf(args[0], args[1:])
            ctx.write_stdout(text)
            return len(text)
        if name == "fprintf":
            text = c_printf(args[1], args[2:]) if len(args) >= 2 else ""
            ctx.write_stdout(text)
            return len(text)

        if name in ("malloc", "calloc"):
            # Bare (uncast, unassigned) allocation: byte-granular buffer.
            nbytes = int(args[0]) if name == "malloc" else int(args[0]) * int(args[1])
            return self.host_alloc(nbytes, ty.CHAR)
        if name == "free":
            ctx.memory.free(args[0], "host")
            return None
        if name == "memset":
            ptr, value, nbytes = args
            self._require_pointer(ptr, "memset")
            count = int(nbytes) // ptr.buf.elem_bytes
            fill = float(value) if ptr.buf.is_float else int(value)
            if int(value) == 0:
                fill = 0.0 if ptr.buf.is_float else 0
            buf = MemoryManager.check_access(
                ptr.buf, ptr.off + max(0, count - 1), ctx.space == "device"
            ) if count > 0 else ptr.buf
            for i in range(ptr.off, ptr.off + count):
                buf.cells[i] = fill
            ctx.counters.store_bytes += count * ptr.buf.elem_bytes
            return ptr
        if name == "memcpy":
            dst, src, nbytes = args
            self._require_pointer(dst, "memcpy")
            self._require_pointer(src, "memcpy")
            count = int(nbytes) // dst.buf.elem_bytes
            if count > 0:
                MemoryManager.check_access(dst.buf, dst.off + count - 1, False)
                MemoryManager.check_access(src.buf, src.off + count - 1, False)
            dst.buf.cells[dst.off:dst.off + count] = (
                src.buf.cells[src.off:src.off + count]
            )
            ctx.counters.load_bytes += count * dst.buf.elem_bytes
            ctx.counters.store_bytes += count * dst.buf.elem_bytes
            return dst

        if name == "atoi":
            try:
                return int(str(args[0]).strip())
            except ValueError:
                return 0
        if name == "atof":
            try:
                return float(str(args[0]).strip())
            except ValueError:
                return 0.0
        if name == "rand":
            return ctx.c_rand()
        if name == "srand":
            ctx.c_srand(int(args[0]))
            return None
        if name == "exit":
            raise GuestExit(int(args[0]))
        if name == "assert":
            if not args[0]:
                raise GuestRuntimeError(
                    "Assertion failed\nAborted (core dumped)",
                    detail="assert() failed",
                )
            return None

        if name.startswith("cuda"):
            return self._cuda_api(name, args, elem_hint)
        if name.startswith("atomic"):
            return self._atomic(name, args)
        if name.startswith("omp_"):
            return self._omp_api(name, args)

        raise InterpreterError(f"builtin {name!r} not implemented")

    @staticmethod
    def _require_pointer(v, api: str) -> None:
        if not isinstance(v, Pointer):
            raise GuestRuntimeError(
                _SEGFAULT, detail=f"{api} called with a non-pointer argument"
            )

    # ------------------------------------------------------------------
    # CUDA runtime API
    # ------------------------------------------------------------------
    def _cuda_api(self, name: str, args: List, elem_hint: Optional[ty.Type]):
        ctx = self.ctx
        if name == "cudaMalloc":
            ref, nbytes = args
            if not isinstance(ref, (ScalarRef, ElemRef)):
                raise GuestRuntimeError(
                    _SEGFAULT, detail="cudaMalloc needs a pointer-to-pointer"
                )
            elem = elem_hint or ty.FLOAT
            ptr = ctx.memory.alloc(int(nbytes), elem, "device")
            if isinstance(ref, ScalarRef):
                ptr.buf.label = ref.name
                ref.set(ptr)
            else:
                ref.ptr.buf.cells[ref.ptr.off] = ptr
            return 0
        if name == "cudaFree":
            ctx.memory.free(args[0], "device")
            return 0
        if name == "cudaMemcpy":
            dst, src, nbytes, kind = args
            return self._cuda_memcpy(dst, src, int(nbytes), int(kind))
        if name == "cudaMemset":
            ptr, value, nbytes = args
            self._require_pointer(ptr, "cudaMemset")
            count = int(nbytes) // ptr.buf.elem_bytes
            fill = 0.0 if ptr.buf.is_float else 0
            if int(value) != 0:
                fill = float(value) if ptr.buf.is_float else int(value)
            for i in range(ptr.off, ptr.off + count):
                ptr.buf.cells[i] = fill
            return 0
        if name in ("cudaDeviceSynchronize", "cudaGetLastError"):
            return 0
        if name == "cudaGetErrorString":
            return "no error"
        raise InterpreterError(f"CUDA API {name!r} not implemented")

    def _cuda_memcpy(self, dst, src, nbytes: int, kind: int) -> int:
        ctx = self.ctx
        if not isinstance(dst, Pointer) or not isinstance(src, Pointer):
            raise GuestRuntimeError(
                _SEGFAULT, detail="cudaMemcpy with a non-pointer argument"
            )
        expected = {
            0: ("host", "host", None),
            1: ("host", "device", "h2d"),
            2: ("device", "host", "d2h"),
            3: ("device", "device", "d2d"),
        }.get(kind)
        if expected is None:
            return 1  # cudaErrorInvalidMemcpyDirection (unchecked by guests)
        src_space, dst_space, direction = expected
        if src.buf.space != src_space or dst.buf.space != dst_space:
            # Real CUDA returns cudaErrorInvalidValue and copies nothing; the
            # guest usually ignores the code and later prints garbage.
            return 1
        if dst.buf.freed or src.buf.freed:
            raise GuestRuntimeError(
                _ILLEGAL, detail="cudaMemcpy on a freed buffer"
            )
        count = nbytes // dst.buf.elem_bytes
        if count < 0 or src.off + count > src.buf.length or (
            dst.off + count > dst.buf.length
        ):
            raise GuestRuntimeError(
                _ILLEGAL,
                detail=(
                    f"cudaMemcpy of {nbytes} bytes overruns buffer "
                    f"(src len {src.buf.length}, dst len {dst.buf.length})"
                ),
            )
        dst.buf.cells[dst.off:dst.off + count] = src.buf.cells[src.off:src.off + count]
        if direction is not None:
            ctx.profile.events.append(
                TransferEvent(bytes=nbytes, direction=direction, api="cuda")
            )
        return 0

    # ------------------------------------------------------------------
    # Device atomics
    # ------------------------------------------------------------------
    def _atomic(self, name: str, args: List):
        ctx = self.ctx
        ref = args[0]
        value = args[1] if len(args) > 1 else 0
        if isinstance(ref, ElemRef):
            p = ref.ptr
            buf = MemoryManager.check_access(p.buf, p.off, ctx.space == "device")
            old = buf.cells[p.off]

            def write(v):
                buf.cells[p.off] = float(v) if buf.is_float else int(v)
        elif isinstance(ref, ScalarRef):
            old = ref.get()

            def write(v):
                ref.set(v)
        elif isinstance(ref, Pointer):
            buf = MemoryManager.check_access(ref.buf, ref.off, ctx.space == "device")
            old = buf.cells[ref.off]

            def write(v):
                buf.cells[ref.off] = float(v) if buf.is_float else int(v)
        else:
            raise GuestRuntimeError(
                _ILLEGAL, detail=f"{name} on a non-pointer argument"
            )

        c = ctx.counters
        c.atomics += 1
        c.store_bytes += 4
        if name == "atomicAdd":
            write(old + value)
        elif name == "atomicSub":
            write(old - value)
        elif name == "atomicMax":
            write(max(old, value))
        elif name == "atomicMin":
            write(min(old, value))
        elif name == "atomicExch":
            write(value)
        elif name == "atomicCAS":
            compare, val = args[1], args[2]
            if old == compare:
                write(val)
        else:
            raise InterpreterError(f"atomic {name!r} not implemented")
        return old

    # ------------------------------------------------------------------
    # OpenMP runtime library
    # ------------------------------------------------------------------
    def _omp_api(self, name: str, args: List):
        if name == "omp_get_num_threads":
            return 1
        if name == "omp_get_max_threads":
            return 64
        if name == "omp_get_thread_num":
            return 0
        if name == "omp_set_num_threads":
            return None
        if name == "omp_get_num_devices":
            return 1
        raise InterpreterError(f"OMP API {name!r} not implemented")

    # ------------------------------------------------------------------
    # CUDA kernel launch
    # ------------------------------------------------------------------
    def launch(self, name: str, grid: int, block: int, args: List) -> None:
        ctx = self.ctx
        fn_def = self.program_functions.get(name)
        if fn_def is None or not fn_def.is_kernel:
            raise GuestRuntimeError(
                "CUDA error: invalid device function",
                detail=f"launch of unknown or non-kernel function {name!r}",
            )
        if block <= 0 or block > 1024 or grid <= 0:
            raise GuestRuntimeError(
                "CUDA error: invalid configuration argument",
                detail=f"launch configuration <<<{grid}, {block}>>> is invalid",
            )
        fc = self._compiler_for(name)
        body = self._compiled.get(f"__kernel__{name}")
        if body is None:
            body = fc.compile_body()
            self._compiled[f"__kernel__{name}"] = body

        param_names = [p.name for p in fn_def.params]
        if len(args) != len(param_names):
            raise GuestRuntimeError(
                "CUDA error: invalid device function",
                detail=f"kernel {name!r} launched with wrong argument count",
            )
        base_env = dict(zip(param_names, args))

        counters = OpCounters()
        prev_counters = ctx.counters
        prev_space = ctx.space
        ctx.counters = counters
        ctx.space = "device"
        total = grid * block
        if fc.barrier_mode:
            path = "barrier"
        elif not fc.has_atomics:
            path = "flat"
        else:
            path = "slow"
        try:
            if fc.barrier_mode:
                self._run_barrier_kernel(fc, body, base_env, grid, block)
            elif not fc.has_atomics:
                self._run_flat_kernel(body, base_env, grid, block)
            else:
                for bid in range(grid):
                    for tid in range(block):
                        ctx.geom = (tid, bid, block, grid)
                        ctx.steps_left -= 1
                        if ctx.steps_left < 0:
                            ctx.consume_steps(0)
                        body(dict(base_env))
        finally:
            ctx.counters = prev_counters
            ctx.space = prev_space
            ctx.geom = (0, 0, 1, 1)
        ctx.profile.events.append(
            KernelEvent(
                name=name,
                total_threads=total,
                block_size=block,
                counters=counters,
                api="cuda",
                path=path,
            )
        )

    #: Largest grid*block for which the flat schedule is materialized and
    #: memoized; bigger launches fall back to the nested loops (a cached
    #: million-tuple schedule would cost more memory than it saves time).
    _GEOM_CACHE_MAX_THREADS = 65536

    def _run_flat_kernel(
        self, body: Callable, base_env: Dict, grid: int, block: int
    ) -> None:
        """Single-pass schedule for barrier-free, atomics-free kernels.

        Semantically identical to the nested block/thread loops — threads
        still execute serially in (block, thread) order — but the per-thread
        harness work is hoisted out of the loop: the whole launch's step
        budget is charged once up front, the per-thread environment copy is
        a single bound ``dict.copy`` call, and the geometry tuples are
        materialized once per (grid, block) shape and reused across the
        app's repeated same-shape launches.
        """
        ctx = self.ctx
        total = grid * block
        ctx.steps_left -= total
        if ctx.steps_left < 0:
            # Terminal state must match the nested path, which bottoms out
            # at steps_left == -1 (one over-decrement, then fault): clamp so
            # steps_used never reports beyond max_steps + 1.
            ctx.steps_left = -1
            ctx.consume_steps(0)
        make_env = base_env.copy
        if total <= self._GEOM_CACHE_MAX_THREADS:
            geoms = self._geom_cache.get((grid, block))
            if geoms is None:
                geoms = [
                    (tid, bid, block, grid)
                    for bid in range(grid)
                    for tid in range(block)
                ]
                self._geom_cache[(grid, block)] = geoms
            for geom in geoms:
                ctx.geom = geom
                body(make_env())
        else:
            for bid in range(grid):
                for tid in range(block):
                    ctx.geom = (tid, bid, block, grid)
                    body(make_env())

    def _run_barrier_kernel(
        self, fc: FunctionCompiler, body: Callable, base_env: Dict,
        grid: int, block: int,
    ) -> None:
        """Interleave a block's threads at __syncthreads granularity."""
        ctx = self.ctx
        shared_sizes = [
            (
                decl,
                fc.compile_expr(decl.array_size)
                if decl.array_size is not None else None,
            )
            for decl in fc.shared_decls
        ]
        for bid in range(grid):
            shared_env: Dict[str, object] = {}
            for decl, size_c in shared_sizes:
                n = int(size_c({})) if size_c is not None else 1
                shared_env[decl.name] = self.stack_alloc(
                    n, decl.type, "device", label=decl.name
                )
            # Hoist the merged per-thread environment template out of the
            # thread loop; each thread then needs only one dict copy.
            merged_env = {**base_env, **shared_env}
            make_env = merged_env.copy
            threads: List[Tuple[int, object]] = []
            for tid in range(block):
                ctx.geom = (tid, bid, block, grid)
                threads.append((tid, body(make_env())))
            live = list(threads)
            while live:
                next_live = []
                at_barrier = []
                finished = []
                for tid, gen in live:
                    ctx.geom = (tid, bid, block, grid)
                    ctx.steps_left -= 1
                    if ctx.steps_left < 0:
                        ctx.consume_steps(0)
                    try:
                        signal = next(gen)
                    except StopIteration:
                        finished.append(tid)
                        continue
                    if signal == BARRIER:
                        at_barrier.append((tid, gen))
                    else:  # pragma: no cover - defensive
                        raise InterpreterError(f"unexpected kernel yield {signal!r}")
                if at_barrier and finished:
                    # Divergent barrier: some threads exited while others
                    # wait.  Real hardware hangs; we fail deterministically.
                    raise GuestRuntimeError(
                        "CUDA error: the launch timed out and was terminated",
                        detail=(
                            f"barrier divergence in block {bid}: threads "
                            f"{finished[:4]} exited while others wait at "
                            f"__syncthreads()"
                        ),
                    )
                ctx.profile.barrier_waits += len(at_barrier)
                next_live = at_barrier
                live = next_live

    # ------------------------------------------------------------------
    # OpenMP pragma execution
    # ------------------------------------------------------------------
    def compile_pragma(self, fc: FunctionCompiler, stmt: ast.Pragma) -> Callable:
        pragma = stmt.pragma
        ctx = self.ctx

        if self.dialect is Dialect.CUDA:
            # nvcc ignored the pragma at compile time; run the body serially.
            if stmt.body is None:
                return lambda env: None
            return fc.compile_stmt(stmt.body)

        if pragma.directive == "target data":
            maps = self._compile_maps(fc, pragma)
            body = fc.compile_stmt(stmt.body) if stmt.body is not None else None

            def run_target_data(env):
                entered = self._maps_enter(maps, env)
                try:
                    if body is not None:
                        return body(env)
                    return None
                finally:
                    self._maps_exit(entered)
            return run_target_data

        if pragma.is_target and pragma.is_loop:
            return self._compile_target_loop(fc, stmt)

        if pragma.directive == "target":
            maps = self._compile_maps(fc, pragma)
            body = fc.compile_stmt(stmt.body) if stmt.body is not None else None

            def run_target_serial(env):
                entered = self._maps_enter(maps, env)
                counters = OpCounters()
                prev_counters, prev_space = ctx.counters, ctx.space
                ctx.counters, ctx.space = counters, "device"
                try:
                    sig = body(env) if body is not None else None
                finally:
                    ctx.counters, ctx.space = prev_counters, prev_space
                    ctx.profile.events.append(
                        KernelEvent(
                            name="<target>",
                            total_threads=1,
                            block_size=1,
                            counters=counters,
                            api="omp",
                            parallel_limit=1,
                            path="omp",
                        )
                    )
                    self._maps_exit(entered)
                return sig
            return run_target_serial

        if pragma.directive in ("parallel for", "parallel"):
            return self._compile_host_parallel(fc, stmt)

        if pragma.directive == "atomic":
            body = fc.compile_stmt(stmt.body)

            def run_atomic(env):
                ctx.counters.atomics += 1
                return body(env)
            return run_atomic

        if pragma.directive in ("critical", "simd"):
            return fc.compile_stmt(stmt.body) if stmt.body is not None else (lambda env: None)
        if pragma.directive == "barrier":
            return lambda env: None

        # Unhandled directive: execute the body plainly.
        if stmt.body is not None:
            return fc.compile_stmt(stmt.body)
        return lambda env: None

    # -- map clause helpers ------------------------------------------------
    def _compile_maps(self, fc: FunctionCompiler, pragma: ast.OmpPragma) -> List:
        compiled = []
        for mc in pragma.maps:
            ident = ast.Ident(name=mc.name)
            var_c = fc.compile_expr(ident)
            length_c = fc.compile_expr(mc.length) if mc.length is not None else None
            t = fc.static_type(ident)
            is_array = t is not None and t.is_pointer
            compiled.append((mc.kind, var_c, length_c, is_array, mc.name))
        return compiled

    def _maps_enter(self, maps: List, env) -> List:
        ctx = self.ctx
        entered = []
        for kind, var_c, length_c, is_array, name in maps:
            if not is_array:
                continue  # scalar maps are firstprivate-ish: no transfer cost
            value = var_c(env)
            if value is None:
                raise GuestRuntimeError(
                    _SEGFAULT, detail=f"map clause names NULL pointer '{name}'"
                )
            if not isinstance(value, Pointer):
                continue
            buf = value.buf
            moved = ctx.memory.map_enter(buf, kind)
            if moved:
                section = (
                    int(length_c(env)) * buf.elem_bytes
                    if length_c is not None else buf.nbytes
                )
                ctx.profile.events.append(
                    TransferEvent(bytes=min(moved, section) if section else moved,
                                  direction="h2d", api="omp")
                )
            entered.append((buf, length_c, env))
        return entered

    def _maps_exit(self, entered: List) -> None:
        ctx = self.ctx
        for buf, length_c, env in reversed(entered):
            moved = ctx.memory.map_exit(buf)
            if moved:
                section = (
                    int(length_c(env)) * buf.elem_bytes
                    if length_c is not None else buf.nbytes
                )
                ctx.profile.events.append(
                    TransferEvent(bytes=min(moved, section) if section else moved,
                                  direction="d2h", api="omp")
                )

    # -- device loop -------------------------------------------------------
    def _compile_target_loop(self, fc: FunctionCompiler, stmt: ast.Pragma) -> Callable:
        ctx = self.ctx
        pragma = stmt.pragma
        loop = stmt.body
        if not isinstance(loop, ast.For):  # pragma: no cover - sema enforces
            return fc.compile_stmt(stmt.body) if stmt.body else (lambda env: None)
        maps = self._compile_maps(fc, pragma)
        nest = self._compile_canonical_nest(fc, loop, pragma.collapse)
        reduction = pragma.reduction
        num_threads_c = (
            fc.compile_expr(pragma.num_threads) if pragma.num_threads is not None else None
        )
        thread_limit_c = (
            fc.compile_expr(pragma.thread_limit) if pragma.thread_limit is not None else None
        )
        directive_width = _OMP_DIRECTIVE_WIDTH.get(pragma.directive)

        def run_target_loop(env):
            entered = self._maps_enter(maps, env)
            counters = OpCounters()
            prev_counters, prev_space = ctx.counters, ctx.space
            saved_reduction = {}
            if reduction is not None:
                identity = {
                    "+": 0, "-": 0, "*": 1,
                    "max": -math.inf, "min": math.inf,
                    "&&": 1, "||": 0,
                }[reduction.op]
                for rname in reduction.names:
                    saved_reduction[rname] = env.get(rname)
                    env[rname] = identity
            ctx.counters, ctx.space = counters, "device"
            try:
                iterations = nest(env)
            finally:
                ctx.counters, ctx.space = prev_counters, prev_space
            if reduction is not None:
                combine = {
                    "+": lambda a, b: a + b,
                    "-": lambda a, b: a + b,
                    "*": lambda a, b: a * b,
                    "max": max, "min": min,
                    "&&": lambda a, b: 1 if (a and b) else 0,
                    "||": lambda a, b: 1 if (a or b) else 0,
                }[reduction.op]
                for rname, saved in saved_reduction.items():
                    acc = env[rname]
                    base = saved if saved is not None else (
                        0 if reduction.op in ("+", "-") else acc
                    )
                    combined = combine(base, acc)
                    if isinstance(saved, int) and not isinstance(saved, bool) and (
                        not isinstance(combined, int)
                    ) and combined not in (math.inf, -math.inf):
                        combined = type(saved)(combined) if isinstance(combined, float) and combined.is_integer() else combined
                    env[rname] = combined
            limit = directive_width
            if num_threads_c is not None:
                v = int(num_threads_c(env))
                limit = v if limit is None else min(limit, v)
            if thread_limit_c is not None:
                v = int(thread_limit_c(env))
                limit = v if limit is None else min(limit, v)
            ctx.profile.events.append(
                KernelEvent(
                    name=f"<{pragma.directive}>",
                    total_threads=max(1, iterations),
                    block_size=min(256, max(1, iterations)),
                    counters=counters,
                    api="omp",
                    parallel_limit=limit,
                    path="omp",
                )
            )
            self._maps_exit(entered)
            return None
        return run_target_loop

    def _compile_canonical_nest(
        self, fc: FunctionCompiler, loop: ast.For, collapse: int
    ) -> Callable:
        """Compile up to ``collapse`` canonical loop levels + innermost body.

        Returns ``run(env) -> iterations`` where iterations is the total
        number of (collapsed) parallel iterations executed.
        """
        levels = []
        cur: ast.For = loop
        for level in range(collapse):
            parts = self._canonical_parts(fc, cur)
            if parts is None:
                break
            levels.append(parts)
            if level + 1 < collapse:
                nxt = self._sole_inner_for(cur.body)
                if nxt is None:
                    break
                cur = nxt
        if not levels:
            # Non-canonical (should have been rejected); run generically.
            body = fc.compile_stmt(loop)

            def run_generic(env):
                body(env)
                return 1
            return run_generic

        innermost_body = fc.compile_stmt(levels[-1][4])
        ctx = self.ctx

        def run_nest(env, depth=0):
            var, start_c, cond_fn, bound_c, _body, delta_c = levels[depth]
            i = start_c(env)
            bound = bound_c(env)
            delta = delta_c(env)
            count = 0
            if depth + 1 < len(levels):
                while cond_fn(i, bound):
                    ctx.steps_left -= 1
                    if ctx.steps_left < 0:
                        ctx.consume_steps(0)
                    env[var] = i
                    count += run_nest(env, depth + 1)
                    i += delta
            else:
                while cond_fn(i, bound):
                    ctx.steps_left -= 1
                    if ctx.steps_left < 0:
                        ctx.consume_steps(0)
                    env[var] = i
                    sig = innermost_body(env)
                    if sig is not None and sig is not CONTINUE:
                        if sig is BREAK:
                            break
                        # return inside an OpenMP loop is non-conforming;
                        # stop iterating like a break.
                        break
                    count += 1
                    i += delta
            return count

        def run(env):
            return run_nest(env, 0)
        return run

    def _sole_inner_for(self, body: ast.Stmt) -> Optional[ast.For]:
        if isinstance(body, ast.For):
            return body
        if isinstance(body, ast.Block):
            fors = [s for s in body.stmts if isinstance(s, ast.For)]
            if len(fors) == 1 and len(body.stmts) == 1:
                return fors[0]
        return None

    def _canonical_parts(self, fc: FunctionCompiler, loop: ast.For):
        """Extract (var, start_c, cond_fn, bound_c, body_ast, delta_c)."""
        import operator as _op

        init = loop.init
        if isinstance(init, ast.VarDecl) and init.init is not None:
            var = init.name
            start_c = fc.compile_expr(init.init)
        elif (
            isinstance(init, ast.ExprStmt)
            and isinstance(init.expr, ast.Assign)
            and init.expr.op == "="
            and isinstance(init.expr.target, ast.Ident)
        ):
            var = init.expr.target.name
            start_c = fc.compile_expr(init.expr.value)
        else:
            return None

        cond = loop.cond
        if not (
            isinstance(cond, ast.Binary)
            and cond.op in ("<", "<=", ">", ">=")
            and isinstance(cond.left, ast.Ident)
            and cond.left.name == var
        ):
            return None
        cond_fn = {"<": _op.lt, "<=": _op.le, ">": _op.gt, ">=": _op.ge}[cond.op]
        bound_c = fc.compile_expr(cond.right)

        step = loop.step
        delta_c = None
        if isinstance(step, (ast.Postfix, ast.Unary)) and step.op in ("++", "--"):
            target = step.operand
            if isinstance(target, ast.Ident) and target.name == var:
                d = 1 if step.op == "++" else -1
                delta_c = lambda env, _d=d: _d
        elif isinstance(step, ast.Assign) and isinstance(step.target, ast.Ident) and (
            step.target.name == var
        ):
            if step.op == "+=":
                inner = fc.compile_expr(step.value)
                delta_c = lambda env: int(inner(env))
            elif step.op == "-=":
                inner = fc.compile_expr(step.value)
                delta_c = lambda env: -int(inner(env))
            elif step.op == "=" and isinstance(step.value, ast.Binary) and (
                step.value.op in ("+", "-")
                and isinstance(step.value.left, ast.Ident)
                and step.value.left.name == var
            ):
                inner = fc.compile_expr(step.value.right)
                sign = 1 if step.value.op == "+" else -1
                delta_c = lambda env, _s=sign: _s * int(inner(env))
        if delta_c is None:
            return None
        return (var, start_c, cond_fn, bound_c, loop.body, delta_c)

    # -- host parallel -------------------------------------------------------
    def _compile_host_parallel(self, fc: FunctionCompiler, stmt: ast.Pragma) -> Callable:
        ctx = self.ctx
        pragma = stmt.pragma
        body = fc.compile_stmt(stmt.body) if stmt.body is not None else None
        num_threads_c = (
            fc.compile_expr(pragma.num_threads) if pragma.num_threads is not None else None
        )
        reduction = pragma.reduction

        def run_host_parallel(env):
            counters = OpCounters()
            prev = ctx.counters
            ctx.counters = counters
            saved_reduction = {}
            if reduction is not None:
                identity = {
                    "+": 0, "-": 0, "*": 1,
                    "max": -math.inf, "min": math.inf,
                    "&&": 1, "||": 0,
                }[reduction.op]
                for rname in reduction.names:
                    saved_reduction[rname] = env.get(rname)
                    env[rname] = identity
            try:
                sig = body(env) if body is not None else None
            finally:
                ctx.counters = prev
            if reduction is not None:
                combine = {
                    "+": lambda a, b: a + b, "-": lambda a, b: a + b,
                    "*": lambda a, b: a * b, "max": max, "min": min,
                    "&&": lambda a, b: 1 if (a and b) else 0,
                    "||": lambda a, b: 1 if (a or b) else 0,
                }[reduction.op]
                for rname, saved in saved_reduction.items():
                    base = saved if saved is not None else 0
                    env[rname] = combine(base, env[rname])
            threads = 64
            if num_threads_c is not None:
                threads = max(1, int(num_threads_c(env)))
            ctx.profile.events.append(
                HostParallelEvent(counters=counters, num_threads=threads)
            )
            return sig
        return run_host_parallel
