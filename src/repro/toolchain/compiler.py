"""Simulated compiler drivers ("nvcc" and "clang++ -fopenmp").

Compilation = lex + parse + semantic analysis of the mini-language.  The
driver renders accumulated diagnostics into conventional compiler stderr;
LASSI's compile self-correction loop (§III-D1 of the paper) splices exactly
this text into its correction prompt, so fidelity of the message text is a
functional requirement, not cosmetics.

Front-end results are memoized in a process-wide :class:`CompileCache`
keyed by ``(sha256(source), dialect, filename)``.  The experiment grid
compiles the same sources over and over — every model re-front-ends the
same app baselines, self-correction rounds frequently resubmit identical
code, and synthetic-suite regeneration replays known sources — so the memo
turns all of that into dictionary lookups.  Results are safe to share: the
returned :class:`CompileResult` (program AST included) is treated as
read-only by every consumer.
"""

from __future__ import annotations

import base64
import hashlib
import json
import pickle
import threading
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.minilang import analyze, parse
from repro.telemetry import metrics as _telemetry_metrics
from repro.minilang.ast import Program
from repro.minilang.diagnostics import DiagnosticBag, Severity
from repro.minilang.source import Dialect, SourceFile


@dataclass
class CompileResult:
    """Outcome of one compiler invocation."""

    ok: bool
    stderr: str
    command: str
    source: SourceFile
    program: Optional[Program] = None
    diagnostics: Optional[DiagnosticBag] = None

    @property
    def error_codes(self):
        if self.diagnostics is None:
            return []
        return [d.code for d in self.diagnostics.errors]

    @property
    def warning_count(self) -> int:
        if self.diagnostics is None:
            return 0
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)


class CompileCache:
    """Content-addressed memo of front-end results.

    Entries are keyed by the SHA-256 of the source text plus the dialect
    and filename (the filename is part of the rendered compile command and
    of diagnostic locations, so it belongs to the identity).  The cache is
    a bounded LRU — sources are small, but a long campaign should not grow
    memory without bound — and is thread-safe so concurrent grid workers
    can share it.  ``hits`` / ``misses`` expose the traffic; the throughput
    benchmarks report them.
    """

    def __init__(self, maxsize: int = 512) -> None:
        self.maxsize = maxsize
        self._lock = threading.Lock()
        self._entries: "OrderedDict[Tuple[str, str, str], CompileResult]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    @staticmethod
    def key(source_text: str, dialect: Dialect, filename: str) -> Tuple[str, str, str]:
        digest = hashlib.sha256(source_text.encode("utf-8")).hexdigest()
        return (digest, dialect.value, filename)

    def get(self, key: Tuple[str, str, str]) -> Optional[CompileResult]:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def put(self, key: Tuple[str, str, str], result: CompileResult) -> None:
        with self._lock:
            self._entries[key] = result
            self._entries.move_to_end(key)
            while len(self._entries) > self.maxsize:
                self._entries.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": (self.hits / total) if total else 0.0,
            }

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


#: On-disk format version for persisted compile entries; bumped when the
#: pickled :class:`CompileResult` graph changes incompatibly.
PERSISTED_COMPILE_VERSION = 1


class PersistentCompileCache(CompileCache):
    """The in-memory LRU backed by a pluggable cross-run store.

    Front-end results are pickled (AST and diagnostics included) into a
    :class:`~repro.experiments.store.CacheStore` under the ``compile``
    namespace, keyed by the SHA-256 of the (source digest, dialect,
    filename) triple.  A memory miss consults the store before running
    the front end, so a second campaign — or another host sharing the
    store — replays compilations instead of re-front-ending them.
    ``store_hits`` counts replays served from the backend; undecodable
    or unpicklable entries fall through to a real compile (and the store
    counts them corrupt).
    """

    def __init__(self, store: Any, maxsize: int = 512) -> None:
        super().__init__(maxsize=maxsize)
        from repro.experiments.store import COMPILE_NAMESPACE, open_store

        self.store = open_store(store)
        self.namespace = COMPILE_NAMESPACE
        self.store_hits = 0

    @staticmethod
    def store_key(key: Tuple[str, str, str]) -> str:
        return hashlib.sha256(
            json.dumps(list(key)).encode("utf-8")
        ).hexdigest()

    def get(self, key: Tuple[str, str, str]) -> Optional[CompileResult]:
        cached = super().get(key)
        if cached is not None:
            return cached
        entry = self.store.get(self.store_key(key), namespace=self.namespace)
        if entry is None or entry.get("version") != PERSISTED_COMPILE_VERSION:
            return None
        try:
            result = pickle.loads(base64.b64decode(entry["pickle"]))
        except Exception:
            return None
        if not isinstance(result, CompileResult):
            return None
        super().put(key, result)
        with self._lock:
            self.store_hits += 1
        return result

    def put(self, key: Tuple[str, str, str], result: CompileResult) -> None:
        super().put(key, result)
        entry = {
            "version": PERSISTED_COMPILE_VERSION,
            "key": list(key),
            "pickle": base64.b64encode(pickle.dumps(result)).decode("ascii"),
        }
        self.store.put(self.store_key(key), entry, namespace=self.namespace)

    def stats(self) -> Dict[str, float]:
        base = super().stats()
        with self._lock:
            base["store_hits"] = self.store_hits
        return base


#: Process-wide front-end memo shared by every driver (one per worker
#: process under the process execution backend).
_COMPILE_CACHE = CompileCache()


def compile_cache_stats() -> Dict[str, float]:
    """Hit/miss counters of the process-wide compile cache."""
    return _COMPILE_CACHE.stats()


# Polled into metrics snapshots as ``compile_cache.*`` gauges — whichever
# cache is installed (a campaign's persistent one inside
# :func:`compile_cache_scope`, the plain memo otherwise).
_telemetry_metrics.register_provider("compile_cache", compile_cache_stats)


def clear_compile_cache() -> None:
    """Drop every memoized front-end result and reset the counters."""
    _COMPILE_CACHE.clear()


@contextmanager
def compile_cache_scope(cache: CompileCache) -> Iterator[CompileCache]:
    """Temporarily swap the process-wide compile memo for ``cache``.

    Campaign runs configured with a shared ``--cache-store`` wrap their
    execution in this scope with a :class:`PersistentCompileCache`, so
    every front-end invocation inside the scope reads/writes the shared
    store; the previous (usually purely in-memory) memo is restored on
    exit, keeping tests and unrelated runs isolated.
    """
    global _COMPILE_CACHE
    previous = _COMPILE_CACHE
    _COMPILE_CACHE = cache
    try:
        yield cache
    finally:
        _COMPILE_CACHE = previous


@dataclass(frozen=True)
class CompilerDriver:
    """One toolchain: a command template plus the dialect it accepts."""

    name: str
    dialect: Dialect
    command_template: str

    def command(self, filename: str) -> str:
        return self.command_template.format(src=filename, out=_binary_name(filename))

    def compile(self, source_text: str, filename: Optional[str] = None) -> CompileResult:
        """'Compile' source text; diagnostics become compiler stderr.

        Identical (source, dialect, filename) invocations are served from
        the process-wide :class:`CompileCache`; the returned result must be
        treated as read-only.
        """
        fname = filename or ("code" + self.dialect.file_extension)
        key = CompileCache.key(source_text, self.dialect, fname)
        cached = _COMPILE_CACHE.get(key)
        if cached is not None:
            return cached
        result = self._front_end(source_text, fname)
        _COMPILE_CACHE.put(key, result)
        return result

    def _front_end(self, source_text: str, fname: str) -> CompileResult:
        source = SourceFile(fname, source_text, self.dialect)
        command = self.command(fname)

        program, parse_diags = parse(source)
        bag = DiagnosticBag()
        bag.extend(parse_diags)
        if not parse_diags.has_errors:
            sema = analyze(program, self.dialect)
            bag.extend(sema.diagnostics)

        ok = not bag.has_errors
        stderr = bag.render(source)
        return CompileResult(
            ok=ok,
            stderr=stderr,
            command=command,
            source=source,
            program=program if ok else None,
            diagnostics=bag,
        )


def _binary_name(filename: str) -> str:
    stem = filename.rsplit("/", 1)[-1]
    for ext in (".cu", ".cpp", ".c", ".cxx"):
        if stem.endswith(ext):
            return stem[: -len(ext)]
    return stem + ".out"


#: The paper compiles CUDA with nvcc on the A100 host.
CUDA_COMPILER = CompilerDriver(
    name="nvcc",
    dialect=Dialect.CUDA,
    command_template="nvcc -O3 -arch=sm_80 -o {out} {src}",
)

#: ...and OpenMP target offload with clang.
OMP_COMPILER = CompilerDriver(
    name="clang++",
    dialect=Dialect.OMP,
    command_template=(
        "clang++ -O3 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda -o {out} {src}"
    ),
)


def compiler_for(dialect: Dialect) -> CompilerDriver:
    """The platform compiler for a dialect (mirrors the paper's setup)."""
    if dialect is Dialect.CUDA:
        return CUDA_COMPILER
    if dialect is Dialect.OMP:
        return OMP_COMPILER
    return CompilerDriver(
        name="g++", dialect=Dialect.C, command_template="g++ -O3 -o {out} {src}"
    )
