"""Simulated compiler drivers ("nvcc" and "clang++ -fopenmp").

Compilation = lex + parse + semantic analysis of the mini-language.  The
driver renders accumulated diagnostics into conventional compiler stderr;
LASSI's compile self-correction loop (§III-D1 of the paper) splices exactly
this text into its correction prompt, so fidelity of the message text is a
functional requirement, not cosmetics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.minilang import analyze, parse
from repro.minilang.ast import Program
from repro.minilang.diagnostics import DiagnosticBag, Severity
from repro.minilang.source import Dialect, SourceFile


@dataclass
class CompileResult:
    """Outcome of one compiler invocation."""

    ok: bool
    stderr: str
    command: str
    source: SourceFile
    program: Optional[Program] = None
    diagnostics: Optional[DiagnosticBag] = None

    @property
    def error_codes(self):
        if self.diagnostics is None:
            return []
        return [d.code for d in self.diagnostics.errors]

    @property
    def warning_count(self) -> int:
        if self.diagnostics is None:
            return 0
        return sum(1 for d in self.diagnostics if d.severity is Severity.WARNING)


@dataclass(frozen=True)
class CompilerDriver:
    """One toolchain: a command template plus the dialect it accepts."""

    name: str
    dialect: Dialect
    command_template: str

    def command(self, filename: str) -> str:
        return self.command_template.format(src=filename, out=_binary_name(filename))

    def compile(self, source_text: str, filename: Optional[str] = None) -> CompileResult:
        """'Compile' source text; diagnostics become compiler stderr."""
        fname = filename or ("code" + self.dialect.file_extension)
        source = SourceFile(fname, source_text, self.dialect)
        command = self.command(fname)

        program, parse_diags = parse(source)
        bag = DiagnosticBag()
        bag.extend(parse_diags)
        if not parse_diags.has_errors:
            sema = analyze(program, self.dialect)
            bag.extend(sema.diagnostics)

        ok = not bag.has_errors
        stderr = bag.render(source)
        return CompileResult(
            ok=ok,
            stderr=stderr,
            command=command,
            source=source,
            program=program if ok else None,
            diagnostics=bag,
        )


def _binary_name(filename: str) -> str:
    stem = filename.rsplit("/", 1)[-1]
    for ext in (".cu", ".cpp", ".c", ".cxx"):
        if stem.endswith(ext):
            return stem[: -len(ext)]
    return stem + ".out"


#: The paper compiles CUDA with nvcc on the A100 host.
CUDA_COMPILER = CompilerDriver(
    name="nvcc",
    dialect=Dialect.CUDA,
    command_template="nvcc -O3 -arch=sm_80 -o {out} {src}",
)

#: ...and OpenMP target offload with clang.
OMP_COMPILER = CompilerDriver(
    name="clang++",
    dialect=Dialect.OMP,
    command_template=(
        "clang++ -O3 -fopenmp -fopenmp-targets=nvptx64-nvidia-cuda -o {out} {src}"
    ),
)


def compiler_for(dialect: Dialect) -> CompilerDriver:
    """The platform compiler for a dialect (mirrors the paper's setup)."""
    if dialect is Dialect.CUDA:
        return CUDA_COMPILER
    if dialect is Dialect.OMP:
        return OMP_COMPILER
    return CompilerDriver(
        name="g++", dialect=Dialect.C, command_template="g++ -O3 -o {out} {src}"
    )
