"""Toolchain facade: compiler drivers and program execution.

This is the boundary the LASSI pipeline sees.  A :class:`CompilerDriver`
mimics invoking ``nvcc`` / ``clang++ -fopenmp`` on a source file: it returns
a structured :class:`CompileResult` whose ``stderr`` is real diagnostic text.
The :class:`Executor` runs a compiled program on the simulated platform and
reports stdout, stderr and the *simulated* runtime from the performance
model — the numbers the paper's Tables IV, VI and VII are built from.
"""

from repro.toolchain.compiler import (
    CompileCache,
    CompileResult,
    CompilerDriver,
    PersistentCompileCache,
    clear_compile_cache,
    compile_cache_scope,
    compile_cache_stats,
    compiler_for,
    CUDA_COMPILER,
    OMP_COMPILER,
)
from repro.toolchain.executor import ExecutionResult, Executor

__all__ = [
    "CompileCache",
    "CompileResult",
    "CompilerDriver",
    "PersistentCompileCache",
    "clear_compile_cache",
    "compile_cache_scope",
    "compile_cache_stats",
    "compiler_for",
    "CUDA_COMPILER",
    "OMP_COMPILER",
    "ExecutionResult",
    "Executor",
]
