"""Program execution on the simulated platform.

Wraps :class:`repro.interp.ProgramRunner` and the performance model into the
shape LASSI needs: run a compiled program with given runtime args, capture
stdout/stderr, and report the simulated wall-clock.  Guest faults never
raise — they come back as a populated ``stderr`` + non-zero exit code, the
signal the execution self-correction loop (§III-D2) feeds to the LLM.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.gpu import PerformanceModel
from repro.gpu.perfmodel import TimeBreakdown
from repro.gpu.stats import ExecutionProfile
from repro.interp import Limits, ProgramRunner
from repro.minilang.ast import Program
from repro.minilang.source import Dialect
from repro.telemetry.log import get_logger

logger = get_logger("toolchain")


@dataclass
class ExecutionResult:
    """Outcome of one simulated program execution."""

    ok: bool
    stdout: str
    stderr: str
    exit_code: int
    #: Simulated wall-clock seconds from the performance model.
    runtime_seconds: float
    profile: Optional[ExecutionProfile] = None
    breakdown: Optional[TimeBreakdown] = None
    args: List[str] = field(default_factory=list)
    #: Interpreter steps consumed out of the step budget (telemetry).
    steps_used: int = 0


class Executor:
    """Runs compiled programs on the simulated A100 platform."""

    def __init__(
        self,
        perf_model: Optional[PerformanceModel] = None,
        limits: Optional[Limits] = None,
    ) -> None:
        self.perf_model = perf_model or PerformanceModel()
        self.limits = limits

    def run(
        self,
        program: Program,
        dialect: Dialect,
        args: Optional[Sequence[str]] = None,
        work_scale: float = 1.0,
        launch_scale: Optional[float] = None,
    ) -> ExecutionResult:
        """Execute ``program`` with ``args``; never raises for guest faults."""
        runner = ProgramRunner(program, dialect, limits=self.limits)
        outcome = runner.run(list(args or []))

        stderr = ""
        ok = outcome.error is None and outcome.exit_code == 0
        if outcome.error is not None:
            stderr = outcome.error
            if outcome.error_detail:
                stderr += f"\n[detail] {outcome.error_detail}"
            # Why an execution was killed is invisible in the result's
            # failure string until someone reads the session; surface the
            # interpreter's step-budget exhaustion / guest fault on the
            # debug log stream too (`--log-level debug`).
            logger.debug(
                "execution killed after %d steps: %s%s",
                outcome.steps_used,
                outcome.error,
                f" ({outcome.error_detail})" if outcome.error_detail else "",
            )
        elif outcome.exit_code != 0:
            stderr = f"process exited with non-zero status {outcome.exit_code}"

        breakdown = self.perf_model.breakdown(outcome.profile, work_scale, launch_scale)
        return ExecutionResult(
            ok=ok,
            stdout=outcome.stdout,
            stderr=stderr,
            exit_code=outcome.exit_code,
            runtime_seconds=breakdown.total,
            profile=outcome.profile,
            breakdown=breakdown,
            args=list(args or []),
            steps_used=outcome.steps_used,
        )
