"""LASSI reproduction (Dearing et al., IEEE CLUSTER 2024).

An offline, from-scratch reproduction of the LASSI pipeline — an LLM-based
automated self-correcting system for translating parallel scientific codes
between OpenMP target offload and CUDA — together with every substrate its
evaluation depends on: a MiniCUDA/MiniOMP compiler front-end and
interpreter, a simulated NVIDIA A100 performance model, the ten HeCBench
applications of Table IV, and simulated versions of the four Table V LLMs.

Quick start (the stable :mod:`repro.api` facade)::

    from repro import api

    result = api.translate("layout", model="gpt4", direction="omp2cuda")
    results = api.evaluate(models=["gpt4"], jobs=4, backend="process")

or at the pipeline level::

    from repro.api import build_pipeline
    from repro.llm.simulated import SimulatedLLM
    from repro.minilang.source import Dialect

    llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA)
    pipeline = build_pipeline(llm, Dialect.OMP, Dialect.CUDA)
    result = pipeline.run(omp_source, reference_target_code=cuda_ref)

See README.md for the architecture map and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = [
    "api",
    "errors",
    "minilang",
    "interp",
    "gpu",
    "toolchain",
    "hecbench",
    "llm",
    "prompts",
    "pipeline",
    "metrics",
    "experiments",
    "synth",
    "cli",
]
