"""LASSI reproduction (Dearing et al., IEEE CLUSTER 2024).

An offline, from-scratch reproduction of the LASSI pipeline — an LLM-based
automated self-correcting system for translating parallel scientific codes
between OpenMP target offload and CUDA — together with every substrate its
evaluation depends on: a MiniCUDA/MiniOMP compiler front-end and
interpreter, a simulated NVIDIA A100 performance model, the ten HeCBench
applications of Table IV, and simulated versions of the four Table V LLMs.

Quick start::

    from repro.llm.simulated import SimulatedLLM
    from repro.minilang.source import Dialect
    from repro.pipeline import LassiPipeline

    llm = SimulatedLLM("gpt4", Dialect.OMP, Dialect.CUDA)
    pipeline = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
    result = pipeline.translate(omp_source, reference_target_code=cuda_ref)

See README.md for the architecture map and EXPERIMENTS.md for the
paper-vs-measured record.
"""

__version__ = "1.0.0"

__all__ = [
    "errors",
    "minilang",
    "interp",
    "gpu",
    "toolchain",
    "hecbench",
    "llm",
    "prompts",
    "pipeline",
    "metrics",
    "experiments",
    "synth",
    "cli",
]
