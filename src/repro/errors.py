"""Exception hierarchy for the LASSI reproduction.

Every error raised by the package derives from :class:`ReproError` so that
callers can catch library failures without masking programming errors.
The toolchain deliberately does *not* raise exceptions for diagnosable
compile/runtime failures of *mini-language programs* — those are reported as
structured results (see :mod:`repro.toolchain`) because the LASSI pipeline
consumes them as data.  Exceptions here signal misuse of the library itself.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all library errors."""


class ConfigError(ReproError):
    """Invalid configuration value or combination."""


class MiniLangError(ReproError):
    """Base for mini-language front-end errors (internal misuse)."""


class LexerError(MiniLangError):
    """Unrecoverable lexing failure (reported as a diagnostic normally)."""


class ParseError(MiniLangError):
    """Unrecoverable parse failure (reported as a diagnostic normally)."""


class SemanticError(MiniLangError):
    """Semantic analysis failure (reported as a diagnostic normally)."""


class InterpreterError(ReproError):
    """Internal interpreter invariant violation (not a guest-program fault)."""


class GuestRuntimeError(ReproError):
    """A mini-language program faulted at run time (OOB, div-by-zero, ...).

    Carries the simulated process' stderr-style message so the executor can
    surface it exactly as a real runtime would.
    """

    def __init__(self, message: str, detail: str = "") -> None:
        super().__init__(message)
        self.message = message
        self.detail = detail


class ResourceLimitExceeded(GuestRuntimeError):
    """Guest program exceeded an interpreter resource limit (steps/memory)."""


class LLMError(ReproError):
    """Base for LLM-client failures."""


class ContextWindowExceeded(LLMError):
    """Prompt did not fit in the model's context window."""

    def __init__(self, model: str, needed: int, limit: int) -> None:
        super().__init__(
            f"prompt of {needed} tokens exceeds context window of "
            f"{limit} tokens for model {model!r}"
        )
        self.model = model
        self.needed = needed
        self.limit = limit


class TransportError(LLMError):
    """Network/transport failure from a real-model adapter."""


class PipelineError(ReproError):
    """LASSI pipeline misuse or unrecoverable stage failure."""


class BaselineError(PipelineError):
    """Original source/target code failed to compile or run (pipeline halts).

    Mirrors §III-A of the paper: LASSI refuses to translate until the user
    fixes the input code.
    """


class UnknownApplicationError(ReproError):
    """Requested HeCBench application is not registered."""


class UnknownSuiteError(ReproError):
    """Requested application suite is not registered or its spec is invalid."""


class UnknownModelError(ReproError):
    """Requested LLM is not present in the registry."""
