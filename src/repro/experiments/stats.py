"""Headline statistics (§V-B/C) computed from scenario results."""

from __future__ import annotations

from typing import Dict, Iterable, List

from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.metrics.aggregate import AggregateStats, aggregate

#: The paper's reported headline numbers, for side-by-side reporting.
PAPER_HEADLINES = {
    OMP2CUDA: {
        "success_rate": 0.80,
        "within_10pct_rate": 0.781,
        "high_similarity_rate": 0.406,
        "first_try_rate": 0.656,
    },
    CUDA2OMP: {
        "success_rate": 0.85,
        "within_10pct_rate": 0.618,
        "high_similarity_rate": 0.471,
        "first_try_rate": 0.559,
    },
}


def direction_stats(results: Iterable) -> Dict[str, AggregateStats]:
    """Aggregate per translation direction."""
    buckets: Dict[str, List] = {OMP2CUDA: [], CUDA2OMP: []}
    for sr in results:
        buckets[sr.scenario.direction].append(sr.metrics)
    return {
        direction: aggregate(metrics) for direction, metrics in buckets.items()
    }


def headline_summary(results: Iterable) -> str:
    """Render measured-vs-paper headline numbers for both directions."""
    stats = direction_stats(results)
    lines: List[str] = []
    names = {OMP2CUDA: "OpenMP -> CUDA", CUDA2OMP: "CUDA -> OpenMP"}
    for direction in (OMP2CUDA, CUDA2OMP):
        agg = stats[direction]
        paper = PAPER_HEADLINES[direction]
        lines.append(f"{names[direction]} ({agg.total} scenarios)")
        lines.append(
            f"  success rate:            {agg.success_rate:6.1%}  "
            f"(paper {paper['success_rate']:.1%})"
        )
        lines.append(
            f"  within 10% or faster:    {agg.within_10pct_rate:6.1%}  "
            f"(paper {paper['within_10pct_rate']:.1%})"
        )
        lines.append(
            f"  Sim-T >= 0.6:            {agg.high_similarity_rate:6.1%}  "
            f"(paper {paper['high_similarity_rate']:.1%})"
        )
        lines.append(
            f"  zero self-corrections:   {agg.first_try_rate:6.1%}  "
            f"(paper {paper['first_try_rate']:.1%})"
        )
    return "\n".join(lines)
