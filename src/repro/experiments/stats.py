"""Headline statistics (§V-B/C) computed from scenario results.

Beyond the single-grid headline numbers, this module aggregates *seed
replicates*: a stochastic variant run under several seeds yields one
:class:`~repro.metrics.aggregate.AggregateStats` per seed, and
:func:`replicate_stats` folds them into mean/min/max/stddev per headline
metric — following Chiang & Sasaki's caution that single-number cluster
statistics hide run-to-run dispersion.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence

from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.metrics.aggregate import AggregateStats, aggregate

#: The paper's reported headline numbers, for side-by-side reporting.
PAPER_HEADLINES = {
    OMP2CUDA: {
        "success_rate": 0.80,
        "within_10pct_rate": 0.781,
        "high_similarity_rate": 0.406,
        "first_try_rate": 0.656,
    },
    CUDA2OMP: {
        "success_rate": 0.85,
        "within_10pct_rate": 0.618,
        "high_similarity_rate": 0.471,
        "first_try_rate": 0.559,
    },
}

#: The four headline metrics, in reporting order.
HEADLINE_METRICS = (
    "success_rate",
    "within_10pct_rate",
    "high_similarity_rate",
    "first_try_rate",
)

DIRECTION_NAMES = {OMP2CUDA: "OpenMP -> CUDA", CUDA2OMP: "CUDA -> OpenMP"}


def direction_stats(results: Iterable) -> Dict[str, AggregateStats]:
    """Aggregate per translation direction.

    Only directions that actually appear in ``results`` are returned, and
    any direction key is tolerated — a filtered grid (or a future third
    direction) must not KeyError its way out of reporting.
    """
    buckets: Dict[str, List] = {}
    for sr in results:
        buckets.setdefault(sr.scenario.direction, []).append(sr.metrics)
    return {
        direction: aggregate(metrics) for direction, metrics in buckets.items()
    }


def direction_order(directions: Iterable[str]) -> List[str]:
    """Paper directions first (in paper order), then anything else sorted."""
    directions = set(directions)
    known = [d for d in (OMP2CUDA, CUDA2OMP) if d in directions]
    return known + sorted(directions - {OMP2CUDA, CUDA2OMP})


def headline_summary(results: Iterable) -> str:
    """Render measured-vs-paper headline numbers per populated direction.

    Directions with zero scenarios are skipped entirely instead of printing
    misleading ``0.0% (paper 80.0%)`` rows; directions the paper did not
    report render without the paper column.
    """
    stats = direction_stats(results)
    lines: List[str] = []
    labels = {
        "success_rate": "success rate:         ",
        "within_10pct_rate": "within 10% or faster: ",
        "high_similarity_rate": "Sim-T >= 0.6:         ",
        "first_try_rate": "zero self-corrections:",
    }
    for direction in direction_order(stats):
        agg = stats[direction]
        if agg.total == 0:
            continue
        paper = PAPER_HEADLINES.get(direction)
        name = DIRECTION_NAMES.get(direction, direction)
        lines.append(f"{name} ({agg.total} scenarios)")
        for metric in HEADLINE_METRICS:
            value = getattr(agg, metric)
            suffix = f"  (paper {paper[metric]:.1%})" if paper else ""
            lines.append(f"  {labels[metric]}   {value:6.1%}{suffix}")
    if not lines:
        return "no scenarios to summarise"
    return "\n".join(lines)


# ----------------------------------------------------------------------
# Seed-replicate aggregation (campaign reporting).

@dataclass(frozen=True)
class ReplicateSummary:
    """Dispersion of one metric across seed replicates."""

    n: int
    mean: float
    min: float
    max: float
    stddev: float  # sample stddev (0.0 for a single replicate)

    def render(self) -> str:
        """``80.0%`` for one replicate, ``80.0% ±2.1%`` for several."""
        if self.n <= 1:
            return f"{self.mean:.1%}"
        return f"{self.mean:.1%} ±{self.stddev:.1%}"


def summarize_values(values: Sequence[float]) -> ReplicateSummary:
    """Mean/min/max/sample-stddev of a non-empty value sequence."""
    if not values:
        raise ValueError("cannot summarise zero replicates")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        stddev = math.sqrt(sum((v - mean) ** 2 for v in values) / (n - 1))
    else:
        stddev = 0.0
    return ReplicateSummary(
        n=n, mean=mean, min=min(values), max=max(values), stddev=stddev
    )


def replicate_stats(
    per_seed: Sequence[AggregateStats],
) -> Dict[str, ReplicateSummary]:
    """Fold per-seed aggregate stats into per-metric dispersion summaries."""
    if not per_seed:
        raise ValueError("cannot summarise zero replicates")
    return {
        metric: summarize_values([getattr(s, metric) for s in per_seed])
        for metric in HEADLINE_METRICS
    }
