"""Renderers that regenerate the paper's tables from live results."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.hecbench import all_apps
from repro.llm.profiles import CUDA2OMP, OMP2CUDA
from repro.llm.registry import all_models
from repro.minilang.source import Dialect
from repro.pipeline import BaselinePreparer
from repro.utils.tables import render_table


def render_table4(baselines: Optional[BaselinePreparer] = None) -> str:
    """Table IV: baseline runtimes of the ten apps on the simulated A100."""
    preparer = baselines or BaselinePreparer()
    rows: List[List[object]] = []
    for app in all_apps():
        cuda = preparer.prepare(
            app.cuda_source, Dialect.CUDA, app.args,
            app.work_scale, app.launch_scale,
        )
        omp = preparer.prepare(
            app.omp_source, Dialect.OMP, app.args,
            app.work_scale, app.launch_scale,
        )
        rows.append([
            app.category,
            app.name,
            "[" + ", ".join(app.paper_args) + "]" if app.paper_args else "None",
            cuda.runtime_seconds,
            omp.runtime_seconds,
        ])
    return render_table(
        ["Category", "Application", "Runtime args", "CUDA (s)", "OpenMP (s)"],
        rows,
        title=(
            "Table IV: Runtimes of selected HeCBench applications on "
            "NVIDIA A100 (simulated)"
        ),
    )


def render_table5() -> str:
    """Table V: the four LLMs."""
    rows = [
        [
            m.name,
            m.parameters,
            m.size_gb if m.size_gb is not None else "API",
            m.quantization,
            f"{m.context_length:,}",
        ]
        for m in all_models()
    ]
    return render_table(
        ["LLM", "Parameters", "Size (GB)", "Quantization", "Context Length (tokens)"],
        rows,
        title="Table V: Selected Large Language Models (LLMs)",
    )


def render_translation_tables(results: Iterable) -> Dict[str, str]:
    """Tables VI/VII from scenario results.

    Returns {"omp2cuda": text, "cuda2omp": text} with one panel pair per
    direction, matching the paper's layout: rows = apps, one five-column
    group (Runtime, Ratio, Sim-T, Sim-L, Self-corr) per LLM.

    Rows are the apps that actually appear in ``results`` (first-seen
    order — scenario-enumeration order, i.e. suite order), falling back to
    the Table IV rows for empty result sets so the paper layout renders
    even before any run.
    """
    indexed: Dict[Tuple[str, str, str], object] = {}
    app_rows: List[str] = []
    for sr in results:
        key = (sr.scenario.direction, sr.scenario.model_key, sr.scenario.app_name)
        indexed[key] = sr.result
        if sr.scenario.app_name not in app_rows:
            app_rows.append(sr.scenario.app_name)
    if not app_rows:
        app_rows = [a.name for a in all_apps()]

    out: Dict[str, str] = {}
    titles = {
        OMP2CUDA: "Table VI: OpenMP to CUDA translation results",
        CUDA2OMP: "Table VII: CUDA to OpenMP translation results",
    }
    for direction, title in titles.items():
        panels: List[str] = [title]
        model_pairs = [
            ("gpt4", "codestral", "Panel A: GPT-4 and Codestral"),
            ("wizardcoder", "deepseek", "Panel B: Wizard Coder and DeepSeek Coder v2"),
        ]
        for left, right, panel_title in model_pairs:
            headers = ["Application"]
            for key in (left, right):
                model_name = next(m.name for m in all_models() if m.key == key)
                headers += [
                    f"{model_name} Runtime (s)", "Ratio", "Sim-T", "Sim-L",
                    "Self-corr",
                ]
            rows: List[List[object]] = []
            for app_name in app_rows:
                row: List[object] = [app_name]
                for key in (left, right):
                    result = indexed.get((direction, key, app_name))
                    if result is None or not result.ok:
                        row += [None, None, None, None, None]
                    else:
                        row += [
                            result.runtime_seconds,
                            result.ratio,
                            round(result.sim_t, 2) if result.sim_t is not None else None,
                            round(result.sim_l, 2) if result.sim_l is not None else None,
                            result.self_corrections,
                        ]
                rows.append(row)
            panels.append(render_table(headers, rows, title=panel_title))
        out[direction] = "\n\n".join(panels)
    return out
