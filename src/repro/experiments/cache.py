"""Content-addressed scenario-result cache.

A :class:`ResultCache` stores one JSON entry per completed scenario, named
by the SHA-256 digest of the cell's full identity::

    (scenario key, profile, seed, PipelineConfig fingerprint)

Two experiment cells with the same identity are guaranteed to produce the
same result (the simulated LLMs are deterministic given profile + seed, and
the config fingerprint covers every ablation switch), so a cache hit can be
replayed instead of re-executing the pipeline.  This is what lets a
campaign's shared cells — e.g. the unablated baseline variant that appears
in every paper ablation — run once and be replayed by every other variant
and by every re-run of the campaign.

Unlike a :class:`~repro.experiments.session.RunSession`, which records the
progress of *one* grid, the cache is a cross-run store: it is consulted
before a scenario is scheduled and written as each scenario completes.
Entries whose stored identity does not match their digest (tampering,
partial writes, format drift) are treated as misses and overwritten.

Storage is pluggable (:mod:`repro.experiments.store`): the default is the
historical directory tree (``<root>/<digest>.json``), but any
:class:`~repro.experiments.store.CacheStore` — e.g. a sqlite file shared
by every host of a sharded campaign — can be passed instead.  Corrupt
entries are counted by the store (``corrupt_reads``), logged with the
offending path, and quarantined by ``repro cache gc``.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments.runner import Scenario, ScenarioResult
from repro.experiments.store import CacheStore, DirectoryCacheStore

#: Bumped when the on-disk entry shape changes incompatibly, or when the
#: results an identical cell identity would produce change (version 2:
#: unplanned scenarios salt the LLM seed per app, so stochastic-profile
#: entries recorded under version 1 no longer match what a fresh run
#: computes — replaying them would silently blend two behaviour models).
CACHE_FORMAT_VERSION = 2


def cache_key(
    scenario: Scenario, profile: str, seed: int, config_fingerprint: str
) -> str:
    """SHA-256 digest of a cell's full identity (the entry's store key)."""
    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "scenario": scenario.to_dict(),
            "profile": profile,
            "seed": seed,
            "config_fingerprint": config_fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Store-backed, content-addressed cache of :class:`ScenarioResult`s.

    ``ResultCache(path)`` keeps the historical behaviour: a directory tree
    with one atomically-renamed JSON file per entry.  ``ResultCache(
    store=...)`` routes the same entries through any
    :class:`~repro.experiments.store.CacheStore` backend under the given
    ``namespace`` (shared stores separate scenario results from persisted
    compile entries this way).  Thread-safe either way; ``hits`` /
    ``misses`` / ``stores`` expose the traffic — the campaign replay tests
    assert on them — and ``corrupt_reads`` counts undecodable entries the
    backend encountered.
    """

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        store: Optional[CacheStore] = None,
        namespace: Optional[str] = None,
    ) -> None:
        if (root is None) == (store is None):
            raise ValueError("pass exactly one of root= or store=")
        self.store = store if store is not None else DirectoryCacheStore(root)
        #: Legacy directory layout keeps entries at the tree root; shared
        #: stores get an explicit namespace so compile entries can coexist.
        self.namespace = namespace if namespace is not None else ""
        if root is not None:
            self.root = Path(root)

    # ------------------------------------------------------------------
    @property
    def hits(self) -> int:
        return self.store.hits

    @property
    def misses(self) -> int:
        return self.store.misses

    @property
    def stores(self) -> int:
        return self.store.stores

    @property
    def corrupt_reads(self) -> int:
        """Undecodable entries seen by this handle (also logged)."""
        return self.store.corrupt

    def get(
        self,
        scenario: Scenario,
        profile: str,
        seed: int,
        config_fingerprint: str,
    ) -> Optional[ScenarioResult]:
        """Return the cached result for this cell, or None on a miss."""
        digest = cache_key(scenario, profile, seed, config_fingerprint)
        entry = self.store.get(digest, namespace=self.namespace)
        if entry is None:
            return None
        if (
            entry.get("version") != CACHE_FORMAT_VERSION
            or entry.get("key") != digest
        ):
            self._demote_hit()
            return None
        try:
            return ScenarioResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            self._demote_hit()
            return None

    def _demote_hit(self) -> None:
        # The store saw a well-formed JSON object and counted a hit, but
        # the entry is unusable at this layer (format drift, tampering):
        # reclassify, so hit/miss counters describe replayable results.
        self.store.reclassify_hit_as_miss()

    def put(
        self,
        result: ScenarioResult,
        profile: str,
        seed: int,
        config_fingerprint: str,
    ) -> str:
        """Store one completed scenario; returns the entry's digest."""
        digest = cache_key(result.scenario, profile, seed, config_fingerprint)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": digest,
            "profile": profile,
            "seed": seed,
            "config_fingerprint": config_fingerprint,
            "result": result.to_dict(),
        }
        self.store.put(digest, entry, namespace=self.namespace)
        return digest

    # ------------------------------------------------------------------
    def stats(self) -> Dict[str, Any]:
        """Traffic counters plus the backend's identity."""
        counters = self.store.counters()
        counters["backend"] = self.store.backend
        counters["namespace"] = self.namespace
        return counters

    def __len__(self) -> int:
        return len(self.store.keys(namespace=self.namespace))
