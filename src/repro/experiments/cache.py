"""Content-addressed scenario-result cache.

A :class:`ResultCache` stores one JSON file per completed scenario, named
by the SHA-256 digest of the cell's full identity::

    (scenario key, profile, seed, PipelineConfig fingerprint)

Two experiment cells with the same identity are guaranteed to produce the
same result (the simulated LLMs are deterministic given profile + seed, and
the config fingerprint covers every ablation switch), so a cache hit can be
replayed instead of re-executing the pipeline.  This is what lets a
campaign's shared cells — e.g. the unablated baseline variant that appears
in every paper ablation — run once and be replayed by every other variant
and by every re-run of the campaign.

Unlike a :class:`~repro.experiments.session.RunSession`, which records the
progress of *one* grid, the cache is a cross-run store: it is consulted
before a scenario is scheduled and written as each scenario completes.
Entries whose stored identity does not match their digest (tampering,
partial writes, format drift) are treated as misses and overwritten.
"""

from __future__ import annotations

import hashlib
import json
import os
import threading
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro.experiments.runner import Scenario, ScenarioResult

#: Bumped when the on-disk entry shape changes incompatibly, or when the
#: results an identical cell identity would produce change (version 2:
#: unplanned scenarios salt the LLM seed per app, so stochastic-profile
#: entries recorded under version 1 no longer match what a fresh run
#: computes — replaying them would silently blend two behaviour models).
CACHE_FORMAT_VERSION = 2


def cache_key(
    scenario: Scenario, profile: str, seed: int, config_fingerprint: str
) -> str:
    """SHA-256 digest of a cell's full identity (the entry's file name)."""
    payload = json.dumps(
        {
            "version": CACHE_FORMAT_VERSION,
            "scenario": scenario.to_dict(),
            "profile": profile,
            "seed": seed,
            "config_fingerprint": config_fingerprint,
        },
        sort_keys=True,
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class ResultCache:
    """Disk-backed, content-addressed store of :class:`ScenarioResult`s.

    Thread-safe: entries are written to a temporary file and atomically
    renamed into place, so concurrent workers (or concurrent campaigns
    sharing one cache directory) never observe half-written entries.
    ``hits`` / ``misses`` / ``stores`` expose the traffic — the campaign
    replay tests assert on them.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0

    # ------------------------------------------------------------------
    def _path(self, digest: str) -> Path:
        return self.root / f"{digest}.json"

    def get(
        self,
        scenario: Scenario,
        profile: str,
        seed: int,
        config_fingerprint: str,
    ) -> Optional[ScenarioResult]:
        """Return the cached result for this cell, or None on a miss."""
        digest = cache_key(scenario, profile, seed, config_fingerprint)
        path = self._path(digest)
        entry = self._read(path)
        if entry is None or entry.get("key") != digest:
            with self._lock:
                self.misses += 1
            return None
        try:
            result = ScenarioResult.from_dict(entry["result"])
        except (KeyError, TypeError):
            with self._lock:
                self.misses += 1
            return None
        with self._lock:
            self.hits += 1
        return result

    def put(
        self,
        result: ScenarioResult,
        profile: str,
        seed: int,
        config_fingerprint: str,
    ) -> str:
        """Store one completed scenario; returns the entry's digest."""
        digest = cache_key(result.scenario, profile, seed, config_fingerprint)
        entry = {
            "version": CACHE_FORMAT_VERSION,
            "key": digest,
            "profile": profile,
            "seed": seed,
            "config_fingerprint": config_fingerprint,
            "result": result.to_dict(),
        }
        path = self._path(digest)
        tmp = path.with_name(f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp")
        tmp.write_text(json.dumps(entry, sort_keys=True), encoding="utf-8")
        os.replace(tmp, path)
        with self._lock:
            self.stores += 1
        return digest

    # ------------------------------------------------------------------
    @staticmethod
    def _read(path: Path) -> Optional[Dict[str, Any]]:
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            return None
        if not isinstance(entry, dict):
            return None
        if entry.get("version") != CACHE_FORMAT_VERSION:
            return None
        return entry

    def __len__(self) -> int:
        return sum(1 for p in self.root.glob("*.json") if not p.name.startswith("."))
