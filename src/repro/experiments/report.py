"""Campaign comparison reports: variant x direction headline tables.

Each populated direction gets one table whose rows are the campaign's
variants and whose columns are the §V-B/C headline metrics.  Variants with
several seed replicates render every metric as ``mean ±stddev`` (sample
stddev over the per-seed aggregates); single-seed variants render the
plain value.  Incomplete cells — a campaign killed mid-variant — are
flagged rather than silently averaged in.

The profiling layer adds two sections: per-variant speedup distributions
(from the same session-persisted ratios the manifest's ``perf`` blocks
summarize, so the scenario counts agree exactly) and — when the campaign
was traced — critical-path attribution of wall time to llm / compile /
exec / overhead.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.experiments.campaign import CampaignResult, CellRun
from repro.experiments.stats import (
    DIRECTION_NAMES,
    HEADLINE_METRICS,
    PAPER_HEADLINES,
    direction_order,
    direction_stats,
    replicate_stats,
)
from repro.metrics.runtime import SLOW_FACTOR, speedup_distribution
from repro.telemetry.summary import (
    CRITICAL_PATH_BUCKETS,
    collect_trace_paths,
    critical_path_report,
)
from repro.utils.tables import render_table

_METRIC_HEADERS = {
    "success_rate": "Success",
    "within_10pct_rate": "<=10% slow",
    "high_similarity_rate": "Sim-T>=0.6",
    "first_try_rate": "0 self-corr",
}


def render_campaign_report(campaign: CampaignResult) -> str:
    """Render the full variant-comparison report for one campaign."""
    spec = campaign.spec
    lines: List[str] = [f"Campaign: {spec.name}"]
    if spec.description:
        lines.append(f"  {spec.description}")

    by_variant = campaign.by_variant()

    # variant -> direction -> list of per-seed AggregateStats.
    per_direction: Dict[str, Dict[str, List]] = {}
    incomplete: List[str] = []
    for variant in spec.variants:
        runs: List[CellRun] = by_variant.get(variant.name, [])
        for run in runs:
            if not run.complete:
                incomplete.append(f"{variant.name} (seed {run.seed})")
            for direction, agg in direction_stats(run.results).items():
                per_direction.setdefault(direction, {}).setdefault(
                    variant.name, []
                ).append(agg)

    if not per_direction:
        lines.append("  (no recorded scenarios yet)")
        return "\n".join(lines)

    headers = ["Variant", "Seeds", "Scenarios"] + [
        _METRIC_HEADERS[m] for m in HEADLINE_METRICS
    ]
    for direction in direction_order(per_direction):
        variant_stats = per_direction[direction]
        rows: List[List[object]] = []
        for variant in spec.variants:
            per_seed = variant_stats.get(variant.name)
            if not per_seed:
                continue
            summaries = replicate_stats(per_seed)
            scenario_counts = sorted({s.total for s in per_seed})
            rows.append(
                [
                    variant.name,
                    len(per_seed),
                    "/".join(str(c) for c in scenario_counts),
                ]
                + [summaries[m].render() for m in HEADLINE_METRICS]
            )
        paper = PAPER_HEADLINES.get(direction)
        if paper is not None:
            rows.append(
                ["(paper)", "-", "-"]
                + [f"{paper[m]:.1%}" for m in HEADLINE_METRICS]
            )
        title = (
            f"{spec.name}: {DIRECTION_NAMES.get(direction, direction)} "
            f"({direction})"
        )
        lines.append("")
        lines.append(render_table(headers, rows, title=title))

    speedups = render_speedup_section(campaign)
    if speedups:
        lines.append("")
        lines.append(speedups)

    critical = render_critical_path_section(campaign)
    if critical:
        lines.append("")
        lines.append(critical)

    if incomplete:
        lines.append("")
        lines.append(
            "warning: incomplete cell(s), statistics may be partial: "
            + ", ".join(incomplete)
        )
    return "\n".join(lines)


def render_speedup_section(campaign: CampaignResult) -> Optional[str]:
    """Per-variant speedup distributions (ref/gen ratio, > 1 = faster).

    Scenario counts come from the same per-cell result lists the
    manifest's ``perf`` blocks summarize, so both agree exactly.
    """
    spec = campaign.spec
    by_variant = campaign.by_variant()
    headers = [
        "Variant", "Seeds", "Scenarios", "Scored",
        "Geomean", "p50", "p95", f">={SLOW_FACTOR:g}x slower",
    ]
    rows: List[List[object]] = []
    for variant in spec.variants:
        runs = by_variant.get(variant.name, [])
        if not runs or not any(run.results for run in runs):
            continue
        ratios = [
            sr.result.ratio
            for run in runs
            for sr in run.results
            if sr.result.ok and sr.result.ratio is not None
        ]
        scenarios = sum(len(run.results) for run in runs)
        dist = speedup_distribution(ratios)
        if dist is None:
            rows.append(
                [variant.name, len(runs), scenarios, 0, "-", "-", "-", "-"]
            )
        else:
            rows.append([
                variant.name,
                len(runs),
                scenarios,
                dist["count"],
                f"{dist['geomean']:.3f}",
                f"{dist['p50']:.3f}",
                f"{dist['p95']:.3f}",
                dist["slower"],
            ])
    if not rows:
        return None
    return render_table(
        headers, rows,
        title=f"{spec.name}: speedup distribution (ratio = ref/gen)",
    )


def render_critical_path_section(campaign: CampaignResult) -> Optional[str]:
    """Trace-derived critical-path attribution, when traces exist.

    Traces cover *executed* pipelines only (replays produce none), so
    the section states its trace count against the manifest's scenario
    total instead of pretending they always match.
    """
    try:
        paths = collect_trace_paths(campaign.directory)
    except FileNotFoundError:
        return None
    report = critical_path_report(paths)
    manifest_scenarios = sum(len(run.results) for run in campaign.runs)
    lines = [
        f"{campaign.spec.name}: critical path "
        f"({report['scenarios']} traced of {manifest_scenarios} "
        f"recorded scenario(s))"
    ]
    headers = ["Bucket", "Dominant in", "Mean wall share"]
    rows: List[List[object]] = [
        [
            bucket,
            report["dominant_counts"][bucket],
            f"{report['mean_fractions'][bucket]:.1%}",
        ]
        for bucket in CRITICAL_PATH_BUCKETS
    ]
    lines.append(render_table(headers, rows))
    return "\n".join(lines)
