"""Campaign comparison reports: variant x direction headline tables.

Each populated direction gets one table whose rows are the campaign's
variants and whose columns are the §V-B/C headline metrics.  Variants with
several seed replicates render every metric as ``mean ±stddev`` (sample
stddev over the per-seed aggregates); single-seed variants render the
plain value.  Incomplete cells — a campaign killed mid-variant — are
flagged rather than silently averaged in.
"""

from __future__ import annotations

from typing import Dict, List

from repro.experiments.campaign import CampaignResult, CellRun
from repro.experiments.stats import (
    DIRECTION_NAMES,
    HEADLINE_METRICS,
    PAPER_HEADLINES,
    direction_order,
    direction_stats,
    replicate_stats,
)
from repro.utils.tables import render_table

_METRIC_HEADERS = {
    "success_rate": "Success",
    "within_10pct_rate": "<=10% slow",
    "high_similarity_rate": "Sim-T>=0.6",
    "first_try_rate": "0 self-corr",
}


def render_campaign_report(campaign: CampaignResult) -> str:
    """Render the full variant-comparison report for one campaign."""
    spec = campaign.spec
    lines: List[str] = [f"Campaign: {spec.name}"]
    if spec.description:
        lines.append(f"  {spec.description}")

    by_variant = campaign.by_variant()

    # variant -> direction -> list of per-seed AggregateStats.
    per_direction: Dict[str, Dict[str, List]] = {}
    incomplete: List[str] = []
    for variant in spec.variants:
        runs: List[CellRun] = by_variant.get(variant.name, [])
        for run in runs:
            if not run.complete:
                incomplete.append(f"{variant.name} (seed {run.seed})")
            for direction, agg in direction_stats(run.results).items():
                per_direction.setdefault(direction, {}).setdefault(
                    variant.name, []
                ).append(agg)

    if not per_direction:
        lines.append("  (no recorded scenarios yet)")
        return "\n".join(lines)

    headers = ["Variant", "Seeds", "Scenarios"] + [
        _METRIC_HEADERS[m] for m in HEADLINE_METRICS
    ]
    for direction in direction_order(per_direction):
        variant_stats = per_direction[direction]
        rows: List[List[object]] = []
        for variant in spec.variants:
            per_seed = variant_stats.get(variant.name)
            if not per_seed:
                continue
            summaries = replicate_stats(per_seed)
            scenario_counts = sorted({s.total for s in per_seed})
            rows.append(
                [
                    variant.name,
                    len(per_seed),
                    "/".join(str(c) for c in scenario_counts),
                ]
                + [summaries[m].render() for m in HEADLINE_METRICS]
            )
        paper = PAPER_HEADLINES.get(direction)
        if paper is not None:
            rows.append(
                ["(paper)", "-", "-"]
                + [f"{paper[m]:.1%}" for m in HEADLINE_METRICS]
            )
        title = (
            f"{spec.name}: {DIRECTION_NAMES.get(direction, direction)} "
            f"({direction})"
        )
        lines.append("")
        lines.append(render_table(headers, rows, title=title))

    if incomplete:
        lines.append("")
        lines.append(
            "warning: incomplete cell(s), statistics may be partial: "
            + ", ".join(incomplete)
        )
    return "\n".join(lines)
