"""Pluggable cache stores: where content-addressed entries live.

Both persistent caches — the scenario-level
:class:`~repro.experiments.cache.ResultCache` and the persisted variant of
the toolchain's :class:`~repro.toolchain.compiler.CompileCache` — speak the
same tiny storage protocol: *get/put/keys/stat/gc* over JSON-object entries
addressed by a content digest within a namespace.  :class:`CacheStore`
names that protocol; two backends implement it:

* :class:`DirectoryCacheStore` — the original one-file-per-entry tree
  (``<root>/<namespace>/<digest>.json``; the empty namespace maps onto the
  root itself, so pre-store campaign cache directories read unchanged).
  Writers take a per-entry advisory file lock (``fcntl``-based, with an
  ``O_EXCL`` spin fallback) around the tmp-write + atomic rename, so
  concurrent processes sharing one tree never corrupt an entry.
* :class:`SqliteCacheStore` — a single-file sqlite database
  (``entries(namespace, key, entry, created_at)``), one connection per
  operation with a busy timeout, so many processes on one host (or a
  shared filesystem) can hammer the same store.  This is the shape a
  future networked backend slots into.

Stores are named by URIs — ``dir:/path/to/tree`` or
``sqlite:/path/to/cache.db`` (a bare path means ``dir:``) — accepted by
``repro campaign run --cache-store``, the ``repro cache`` verbs and
:func:`open_store`.

Corrupt entries (truncated writes, tampering) are never silently dropped:
every undecodable read increments the store's ``corrupt`` counter and logs
a warning naming the offending path/row, ``stat()`` surfaces the count,
and ``gc()`` quarantines the bodies (``quarantine/`` subdirectory, or the
``quarantine`` table) instead of deleting evidence.
"""

from __future__ import annotations

import abc
import json
import logging
import os
import sqlite3
import threading
import time
import weakref
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.telemetry import metrics as _metrics

logger = logging.getLogger(__name__)

#: Live store handles whose counters the metrics provider aggregates.
_LIVE_STORES: "weakref.WeakSet[CacheStore]" = weakref.WeakSet()


def _store_counter_totals() -> Dict[str, float]:
    """Summed hit/miss/store/corrupt traffic across live store handles
    (polled into metrics snapshots as ``cache_store.*`` gauges)."""
    totals: Dict[str, float] = {
        "hits": 0.0, "misses": 0.0, "stores": 0.0, "corrupt": 0.0,
    }
    for store in list(_LIVE_STORES):
        for key, value in store.counters().items():
            totals[key] = totals.get(key, 0.0) + value
    return totals


_metrics.register_provider("cache_store", _store_counter_totals)

#: Recognized cache-store URI schemes.
STORE_SCHEMES = ("dir", "sqlite")

#: Namespace used for scenario-result entries in shared stores.
RESULTS_NAMESPACE = "results"

#: Namespace used for persisted compiler front-end entries.
COMPILE_NAMESPACE = "compile"


class CacheStoreError(ReproError):
    """Raised for unusable store URIs and unrecoverable backend failures."""


# ----------------------------------------------------------------------
class FileLock:
    """Advisory per-file lock for cross-process writer exclusion.

    Uses ``fcntl.flock`` where available (POSIX); elsewhere falls back to
    an ``O_CREAT|O_EXCL`` spin lock on the same path.  Either way the lock
    is advisory — it only excludes other :class:`FileLock` holders — which
    is exactly what the directory store needs: writers of the *same* entry
    serialize, readers never block (reads are safe against the atomic
    rename).
    """

    def __init__(self, path: Union[str, Path], timeout: float = 30.0) -> None:
        self.path = Path(path)
        self.timeout = timeout
        self._fd: Optional[int] = None
        self._exclusive = False  # O_EXCL fallback owns the file's existence

    def acquire(self) -> None:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            import fcntl
        except ImportError:  # pragma: no cover - non-POSIX fallback
            self._acquire_spin()
            return
        fd = os.open(self.path, os.O_RDWR | os.O_CREAT, 0o644)
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                fcntl.flock(fd, fcntl.LOCK_EX | fcntl.LOCK_NB)
                self._fd = fd
                return
            except OSError:
                if time.monotonic() >= deadline:
                    os.close(fd)
                    raise CacheStoreError(
                        f"timed out after {self.timeout}s waiting for "
                        f"cache-store lock {self.path}"
                    )
                time.sleep(0.01)

    def _acquire_spin(self) -> None:  # pragma: no cover - non-POSIX fallback
        deadline = time.monotonic() + self.timeout
        while True:
            try:
                self._fd = os.open(
                    self.path, os.O_CREAT | os.O_EXCL | os.O_RDWR, 0o644
                )
                self._exclusive = True
                return
            except FileExistsError:
                if time.monotonic() >= deadline:
                    raise CacheStoreError(
                        f"timed out after {self.timeout}s waiting for "
                        f"cache-store lock {self.path}"
                    )
                time.sleep(0.01)

    def release(self) -> None:
        if self._fd is None:
            return
        try:
            os.close(self._fd)
        finally:
            self._fd = None
            if self._exclusive:  # pragma: no cover - non-POSIX fallback
                self._exclusive = False
                try:
                    self.path.unlink()
                except OSError:
                    pass

    def __enter__(self) -> "FileLock":
        self.acquire()
        return self

    def __exit__(self, *_exc: object) -> None:
        self.release()


# ----------------------------------------------------------------------
@dataclass
class GcReport:
    """What one :meth:`CacheStore.gc` pass did."""

    scanned: int = 0
    kept: int = 0
    pruned: int = 0
    quarantined: int = 0
    #: Human-readable identifiers of quarantined entries (paths or rowids).
    quarantined_ids: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "scanned": self.scanned,
            "kept": self.kept,
            "pruned": self.pruned,
            "quarantined": self.quarantined,
        }


class CacheStore(abc.ABC):
    """get/put/keys/stat/gc over JSON entries, addressed by (namespace, key).

    Implementations must make ``put`` atomic with respect to concurrent
    readers *and* safe under concurrent same-key writers from other
    processes.  ``hits``/``misses``/``stores``/``corrupt`` count this
    handle's traffic; ``stat()`` additionally scans the persistent state.
    """

    backend: str = "abstract"

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.corrupt = 0
        _LIVE_STORES.add(self)

    # -- backend primitives --------------------------------------------
    @abc.abstractmethod
    def _read_entry(self, namespace: str, key: str) -> Optional[dict]:
        """Return the decoded entry, None on absence, raising nothing.

        Must call :meth:`_note_corrupt` for undecodable bodies."""

    @abc.abstractmethod
    def _write_entry(self, namespace: str, key: str, entry: dict) -> None:
        ...

    @abc.abstractmethod
    def keys(self, namespace: str = "") -> List[str]:
        """Sorted keys currently present in one namespace."""

    @abc.abstractmethod
    def stat(self) -> Dict[str, Any]:
        """Scan the persistent state: entry/corrupt counts per namespace."""

    @abc.abstractmethod
    def gc(self, max_age_seconds: Optional[float] = None) -> GcReport:
        """Quarantine corrupt entries; prune readable ones older than
        ``max_age_seconds`` (None = keep all readable entries)."""

    @abc.abstractmethod
    def describe(self) -> str:
        """The store's canonical URI (``<scheme>:<location>``)."""

    def close(self) -> None:
        """Release backend resources (no-op for both built-ins)."""

    # -- shared surface ------------------------------------------------
    def get(self, key: str, namespace: str = "") -> Optional[dict]:
        entry = self._read_entry(namespace, key)
        with self._lock:
            if entry is None:
                self.misses += 1
            else:
                self.hits += 1
        return entry

    def put(self, key: str, entry: dict, namespace: str = "") -> None:
        self._write_entry(namespace, key, entry)
        with self._lock:
            self.stores += 1

    def reclassify_hit_as_miss(self) -> None:
        """Demote the latest hit: the entry decoded but is unusable
        upstream (format drift, identity mismatch)."""
        with self._lock:
            self.hits -= 1
            self.misses += 1

    def _note_corrupt(self, where: str) -> None:
        with self._lock:
            self.corrupt += 1
        logger.warning("corrupt cache entry at %s (counted, will be "
                       "quarantined by gc)", where)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "stores": self.stores,
                "corrupt": self.corrupt,
            }

    def __len__(self) -> int:
        return sum(
            count for count in self.stat()["namespaces"].values()
        )


# ----------------------------------------------------------------------
class DirectoryCacheStore(CacheStore):
    """One JSON file per entry under ``<root>/<namespace>/``.

    The empty namespace lives directly in ``root``, which keeps the
    layout byte-compatible with pre-store ``ResultCache`` directories.
    Writes go through a per-entry advisory :class:`FileLock` plus a
    tmp-file + ``os.replace`` so concurrent writers (threads or
    processes) can race on the same key without torn entries.
    """

    backend = "dir"

    #: Subdirectory corrupt entries are moved into by :meth:`gc`.
    QUARANTINE_DIR = "quarantine"

    #: Subdirectory holding writer lock files (kept out of entry globs).
    LOCKS_DIR = ".locks"

    def __init__(self, root: Union[str, Path]) -> None:
        super().__init__()
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def describe(self) -> str:
        return f"dir:{self.root}"

    # ------------------------------------------------------------------
    def _dir(self, namespace: str) -> Path:
        return self.root / namespace if namespace else self.root

    def _path(self, namespace: str, key: str) -> Path:
        return self._dir(namespace) / f"{key}.json"

    def _entry_paths(self, namespace: str) -> List[Path]:
        directory = self._dir(namespace)
        if not directory.is_dir():
            return []
        return sorted(
            p for p in directory.glob("*.json") if not p.name.startswith(".")
        )

    def _namespaces(self) -> List[str]:
        found = [""] if self._entry_paths("") else []
        for child in sorted(self.root.iterdir()):
            if child.is_dir() and child.name not in (
                self.QUARANTINE_DIR, self.LOCKS_DIR,
            ):
                found.append(child.name)
        return found or [""]

    # ------------------------------------------------------------------
    def _read_entry(self, namespace: str, key: str) -> Optional[dict]:
        path = self._path(namespace, key)
        try:
            raw = path.read_text(encoding="utf-8")
        except OSError:
            return None
        try:
            entry = json.loads(raw)
        except json.JSONDecodeError:
            self._note_corrupt(str(path))
            return None
        if not isinstance(entry, dict):
            self._note_corrupt(str(path))
            return None
        return entry

    def _write_entry(self, namespace: str, key: str, entry: dict) -> None:
        path = self._path(namespace, key)
        path.parent.mkdir(parents=True, exist_ok=True)
        lock = FileLock(self.root / self.LOCKS_DIR / f"{key}.lock")
        tmp = path.with_name(
            f".{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        with lock:
            tmp.write_text(
                json.dumps(entry, sort_keys=True), encoding="utf-8"
            )
            os.replace(tmp, path)

    def keys(self, namespace: str = "") -> List[str]:
        return [p.stem for p in self._entry_paths(namespace)]

    # ------------------------------------------------------------------
    def stat(self) -> Dict[str, Any]:
        namespaces: Dict[str, int] = {}
        corrupt = 0
        total_bytes = 0
        for ns in self._namespaces():
            count = 0
            for path in self._entry_paths(ns):
                total_bytes += path.stat().st_size
                if self._decodes(path):
                    count += 1
                else:
                    corrupt += 1
            namespaces[ns] = count
        return {
            "backend": self.backend,
            "location": str(self.root),
            "namespaces": namespaces,
            "entries": sum(namespaces.values()),
            "corrupt": corrupt,
            "bytes": total_bytes,
        }

    @staticmethod
    def _decodes(path: Path) -> bool:
        try:
            return isinstance(
                json.loads(path.read_text(encoding="utf-8")), dict
            )
        except (OSError, json.JSONDecodeError):
            return False

    def gc(self, max_age_seconds: Optional[float] = None) -> GcReport:
        report = GcReport()
        now = time.time()
        quarantine = self.root / self.QUARANTINE_DIR
        for ns in self._namespaces():
            for path in self._entry_paths(ns):
                report.scanned += 1
                if not self._decodes(path):
                    quarantine.mkdir(parents=True, exist_ok=True)
                    target = quarantine / (
                        f"{ns}-{path.name}" if ns else path.name
                    )
                    os.replace(path, target)
                    report.quarantined += 1
                    report.quarantined_ids.append(str(target))
                    logger.warning(
                        "quarantined corrupt cache entry %s -> %s",
                        path, target,
                    )
                    continue
                age = now - path.stat().st_mtime
                if max_age_seconds is not None and age > max_age_seconds:
                    path.unlink()
                    report.pruned += 1
                else:
                    report.kept += 1
        return report


# ----------------------------------------------------------------------
class SqliteCacheStore(CacheStore):
    """All entries in one sqlite file; safe for concurrent processes.

    Every operation opens a short-lived connection with a busy timeout,
    so the store object itself is trivially thread-safe and the database
    is the single point of cross-process coordination (sqlite's own
    locking serializes writers).  Entries are stored as their JSON text;
    rows that fail to decode are counted as corrupt and moved to the
    ``quarantine`` table by :meth:`gc`.
    """

    backend = "sqlite"

    _SCHEMA = """
        CREATE TABLE IF NOT EXISTS entries (
            namespace TEXT NOT NULL,
            key TEXT NOT NULL,
            entry TEXT NOT NULL,
            created_at REAL NOT NULL,
            PRIMARY KEY (namespace, key)
        );
        CREATE TABLE IF NOT EXISTS quarantine (
            namespace TEXT NOT NULL,
            key TEXT NOT NULL,
            entry TEXT NOT NULL,
            quarantined_at REAL NOT NULL
        );
    """

    def __init__(
        self, path: Union[str, Path], timeout: float = 30.0
    ) -> None:
        super().__init__()
        self.path = Path(path)
        self.timeout = timeout
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with self._connect() as conn:
            conn.executescript(self._SCHEMA)

    def describe(self) -> str:
        return f"sqlite:{self.path}"

    def _connect(self) -> sqlite3.Connection:
        try:
            conn = sqlite3.connect(self.path, timeout=self.timeout)
        except sqlite3.Error as exc:
            raise CacheStoreError(
                f"cannot open sqlite cache store {self.path}: {exc}"
            ) from exc
        return conn

    # ------------------------------------------------------------------
    def _read_entry(self, namespace: str, key: str) -> Optional[dict]:
        with self._connect() as conn:
            row = conn.execute(
                "SELECT entry FROM entries WHERE namespace=? AND key=?",
                (namespace, key),
            ).fetchone()
        if row is None:
            return None
        try:
            entry = json.loads(row[0])
        except json.JSONDecodeError:
            self._note_corrupt(f"{self.path}:{namespace}/{key}")
            return None
        if not isinstance(entry, dict):
            self._note_corrupt(f"{self.path}:{namespace}/{key}")
            return None
        return entry

    def _write_entry(self, namespace: str, key: str, entry: dict) -> None:
        payload = json.dumps(entry, sort_keys=True)
        with self._connect() as conn:
            conn.execute(
                "INSERT OR REPLACE INTO entries "
                "(namespace, key, entry, created_at) VALUES (?, ?, ?, ?)",
                (namespace, key, payload, time.time()),
            )

    def keys(self, namespace: str = "") -> List[str]:
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT key FROM entries WHERE namespace=? ORDER BY key",
                (namespace,),
            ).fetchall()
        return [r[0] for r in rows]

    # ------------------------------------------------------------------
    def stat(self) -> Dict[str, Any]:
        namespaces: Dict[str, int] = {}
        corrupt = 0
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT namespace, entry FROM entries"
            ).fetchall()
        for ns, payload in rows:
            if self._decodes(payload):
                namespaces[ns] = namespaces.get(ns, 0) + 1
            else:
                corrupt += 1
        try:
            total_bytes = self.path.stat().st_size
        except OSError:
            total_bytes = 0
        return {
            "backend": self.backend,
            "location": str(self.path),
            "namespaces": namespaces,
            "entries": sum(namespaces.values()),
            "corrupt": corrupt,
            "bytes": total_bytes,
        }

    @staticmethod
    def _decodes(payload: str) -> bool:
        try:
            return isinstance(json.loads(payload), dict)
        except json.JSONDecodeError:
            return False

    def gc(self, max_age_seconds: Optional[float] = None) -> GcReport:
        report = GcReport()
        now = time.time()
        with self._connect() as conn:
            rows = conn.execute(
                "SELECT namespace, key, entry, created_at FROM entries"
            ).fetchall()
            for ns, key, payload, created_at in rows:
                report.scanned += 1
                if not self._decodes(payload):
                    conn.execute(
                        "INSERT INTO quarantine "
                        "(namespace, key, entry, quarantined_at) "
                        "VALUES (?, ?, ?, ?)",
                        (ns, key, payload, now),
                    )
                    conn.execute(
                        "DELETE FROM entries WHERE namespace=? AND key=?",
                        (ns, key),
                    )
                    report.quarantined += 1
                    report.quarantined_ids.append(f"{ns}/{key}")
                    logger.warning(
                        "quarantined corrupt cache row %s:%s/%s",
                        self.path, ns, key,
                    )
                elif (
                    max_age_seconds is not None
                    and now - created_at > max_age_seconds
                ):
                    conn.execute(
                        "DELETE FROM entries WHERE namespace=? AND key=?",
                        (ns, key),
                    )
                    report.pruned += 1
                else:
                    report.kept += 1
        return report


# ----------------------------------------------------------------------
def parse_store_uri(uri: str) -> Tuple[str, str]:
    """Split a cache-store URI into ``(scheme, location)``.

    ``dir:<path>`` and ``sqlite:<path>`` are explicit; a bare path is a
    directory store (the historical layout).  Windows-style drive letters
    are not mistaken for schemes (single-letter prefixes pass through).
    """
    scheme, sep, rest = uri.partition(":")
    if sep and len(scheme) > 1:
        if scheme not in STORE_SCHEMES:
            raise CacheStoreError(
                f"unknown cache-store scheme {scheme!r} in {uri!r}; "
                f"expected one of: "
                + ", ".join(f"{s}:<path>" for s in STORE_SCHEMES)
            )
        if not rest:
            raise CacheStoreError(f"cache-store URI {uri!r} has no path")
        return scheme, rest
    if not uri:
        raise CacheStoreError("cache-store URI is empty")
    return "dir", uri


def open_store(store: Union[str, Path, CacheStore]) -> CacheStore:
    """Resolve a URI / path / already-open store into a :class:`CacheStore`."""
    if isinstance(store, CacheStore):
        return store
    scheme, location = parse_store_uri(str(store))
    if scheme == "sqlite":
        return SqliteCacheStore(location)
    return DirectoryCacheStore(location)
