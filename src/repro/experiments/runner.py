"""The §V experiment: 10 apps x 4 LLMs x 2 directions = 80 pipeline runs.

Each scenario instantiates a :class:`SimulatedLLM` with the Tables VI/VII
cell plan for (model, direction, app) — or a seeded stochastic plan when
``profile="stochastic"`` — and drives the full LASSI pipeline.  Baselines
are shared through one :class:`BaselinePreparer`, mirroring §IV: each
HeCBench test case is compiled and executed once with fixed arguments and
reused across all models.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from repro.hecbench import AppSpec, Suite, resolve_suite
from repro.llm.profiles import CUDA2OMP, OMP2CUDA, CellPlan, paper_plan
from repro.llm.registry import all_models
from repro.llm.simulated import SimulatedLLM
from repro.metrics.aggregate import ScenarioMetrics
from repro.minilang.source import Dialect
from repro.pipeline import BaselinePreparer, PipelineConfig, build_pipeline
from repro.pipeline.results import LassiResult
from repro.telemetry import SpanTracer, get_flight_recorder, record_run
from repro.toolchain import Executor
from repro.utils.rng import derive_seed

DIRECTIONS: Dict[str, Tuple[Dialect, Dialect]] = {
    OMP2CUDA: (Dialect.OMP, Dialect.CUDA),
    CUDA2OMP: (Dialect.CUDA, Dialect.OMP),
}


@dataclass(frozen=True)
class Scenario:
    model_key: str
    direction: str  # "omp2cuda" | "cuda2omp"
    app_name: str

    @property
    def key(self) -> Tuple[str, str, str]:
        """Stable identity used by sessions to detect completed scenarios."""
        return (self.model_key, self.direction, self.app_name)

    def to_dict(self) -> Dict[str, str]:
        return {
            "model_key": self.model_key,
            "direction": self.direction,
            "app_name": self.app_name,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, str]) -> "Scenario":
        return cls(
            model_key=data["model_key"],
            direction=data["direction"],
            app_name=data["app_name"],
        )


@dataclass
class ScenarioResult:
    scenario: Scenario
    result: LassiResult

    @property
    def metrics(self) -> ScenarioMetrics:
        return self.result.metrics()

    def to_dict(self, include_timings: bool = False) -> Dict[str, Any]:
        """Serialize; ``include_timings`` carries per-stage wall times
        (telemetry) — off by default so sessions/caches stay deterministic.
        """
        return {
            "scenario": self.scenario.to_dict(),
            "result": self.result.to_dict(include_timings=include_timings),
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ScenarioResult":
        return cls(
            scenario=Scenario.from_dict(data["scenario"]),
            result=LassiResult.from_dict(data["result"]),
        )


class ExperimentRunner:
    """Runs the paper's evaluation grid (or any subset of it)."""

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        profile: str = "paper",
        seed: int = 2024,
        executor: Optional[Executor] = None,
        baselines: Optional[BaselinePreparer] = None,
        suite: Union[str, Suite, None] = None,
        trace: bool = False,
    ) -> None:
        if profile not in ("paper", "stochastic"):
            raise ValueError(f"unknown profile {profile!r}")
        self.config = config or PipelineConfig()
        self.profile = profile
        self.seed = seed
        #: The application suite the grid enumerates (default: Table IV).
        self.suite = resolve_suite(suite)
        self.executor = executor or Executor()
        # A campaign shares one preparer across every variant runner so each
        # (app, dialect) baseline is still built exactly once campaign-wide.
        self.baselines = baselines or BaselinePreparer(self.executor)
        #: Number of pipelines actually executed (cache/session replays are
        #: not counted) — campaign cache tests assert on this.
        self.pipeline_runs = 0
        self._counter_lock = threading.Lock()
        #: Telemetry switch: when on, every executed scenario is traced
        #: (a :class:`~repro.telemetry.SpanTracer` + the process flight
        #: recorder ride the pipeline's event bus) and its spans land on
        #: ``result.spans``.  Off by default — the bookkeeping budget.
        self.trace = trace

    @property
    def config_fingerprint(self) -> str:
        """Content hash of ``self.config`` (see PipelineConfig.fingerprint)."""
        return self.config.fingerprint()

    # ------------------------------------------------------------------
    def scenarios(
        self,
        models: Optional[Iterable[str]] = None,
        directions: Optional[Iterable[str]] = None,
        apps: Optional[Iterable[str]] = None,
    ) -> List[Scenario]:
        model_keys = list(models) if models else [m.key for m in all_models()]
        dir_keys = list(directions) if directions else [OMP2CUDA, CUDA2OMP]
        # An explicit app filter is validated against (and canonicalized
        # by) the suite, so a name outside the configured suite fails here
        # instead of silently executing via a wider lookup.
        app_names = (
            [self.suite.get(a).name for a in apps]
            if apps else self.suite.app_names()
        )
        return [
            Scenario(model_key=m, direction=d, app_name=a)
            for d in dir_keys
            for m in model_keys
            for a in app_names
        ]

    # ------------------------------------------------------------------
    def run_scenario(self, scenario: Scenario, app: Optional[AppSpec] = None) -> ScenarioResult:
        if app is None:
            # Strictly suite-scoped: a scenario naming an app outside the
            # configured suite is an error, not a silent widening.  Callers
            # with an out-of-suite app in hand pass it explicitly.
            app = self.suite.get(scenario.app_name)
        source_dialect, target_dialect = DIRECTIONS[scenario.direction]
        with self._counter_lock:
            self.pipeline_runs += 1

        plan: Optional[CellPlan] = None
        if self.profile == "paper":
            plan = paper_plan(scenario.model_key, scenario.direction, app.name)
        llm_seed = self.seed
        if plan is None:
            # Unplanned scenario (stochastic profile, or an app beyond the
            # 80 paper cells — e.g. a generated one): salt the stream with
            # the app name so each app draws its own behaviour instead of
            # every app in the grid sharing one (model, direction) plan.
            llm_seed = derive_seed(self.seed, "scenario", app.name)
        llm = SimulatedLLM(
            scenario.model_key,
            source_dialect,
            target_dialect,
            plan=plan,
            seed=llm_seed,
        )
        tracer: Optional[SpanTracer] = None
        subscribers = []
        if self.trace:
            tracer = SpanTracer()
            recorder = get_flight_recorder()
            recorder.set_context(scenario=scenario.to_dict())
            subscribers = [tracer, recorder]
        # Each scenario assembles its own stage graph (cheap: the stages
        # are thin objects over the shared executor/baseline services).
        pipeline = build_pipeline(
            llm,
            source_dialect,
            target_dialect,
            config=self.config,
            executor=self.executor,
            baseline_preparer=self.baselines,
            subscribers=subscribers,
        )
        try:
            result = pipeline.run(
                app.source(source_dialect),
                reference_target_code=app.source(target_dialect),
                args=app.args,
                work_scale=app.work_scale,
                launch_scale=app.launch_scale,
            )
        except Exception as exc:
            if self.trace:
                # A dead worker must be debuggable from artifacts alone.
                get_flight_recorder().dump("pipeline-exception", exc)
            raise
        if tracer is not None:
            result.spans = tracer.drain()
            record_run(
                str(result.status),
                result.self_corrections,
                len(result.attempts),
                result.spans,
            )
        return ScenarioResult(scenario=scenario, result=result)

    # ------------------------------------------------------------------
    def run(
        self,
        models: Optional[Iterable[str]] = None,
        directions: Optional[Iterable[str]] = None,
        apps: Optional[Iterable[str]] = None,
        progress: Optional[callable] = None,
    ) -> List[ScenarioResult]:
        out: List[ScenarioResult] = []
        for scenario in self.scenarios(models, directions, apps):
            res = self.run_scenario(scenario)
            out.append(res)
            if progress is not None:
                progress(res)
        return out
