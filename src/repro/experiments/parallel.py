"""Parallel execution of the §V experiment grid.

The 80-scenario evaluation is embarrassingly parallel: every (model,
direction, app) cell is an independent pipeline run that shares only the
read-only app sources and the baseline cache.  :class:`ParallelExperimentRunner`
shards the grid across a :class:`concurrent.futures.ThreadPoolExecutor`
while keeping three guarantees the serial runner provides for free:

* **deterministic ordering** — results come back in scenario-enumeration
  order regardless of which worker finished first, so table renderers and
  downstream statistics see the exact same sequence as ``ExperimentRunner``;
* **single baseline build per app** — all workers share one
  :class:`~repro.pipeline.BaselinePreparer`, whose per-key locks make
  concurrent first requests for the same baseline compile it exactly once;
* **identical per-scenario behaviour** — each scenario constructs its own
  seeded :class:`SimulatedLLM` and pipeline, so statuses and metrics do not
  depend on ``jobs`` (the determinism tests pin this).

Pair it with a :class:`~repro.experiments.session.RunSession` to persist
every result as it completes and to resume an interrupted grid.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor, as_completed
from typing import Iterable, List, Optional, Union

from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentRunner, ScenarioResult
from repro.experiments.session import RunSession
from repro.hecbench import Suite
from repro.pipeline import BaselinePreparer, PipelineConfig
from repro.toolchain import Executor

#: Upper bound on worker threads; the grid is only 80 cells wide.
MAX_JOBS = 64


class ParallelExperimentRunner(ExperimentRunner):
    """Runs the evaluation grid on a worker pool, optionally session-backed.

    ``jobs=1`` degenerates to serial execution (still through the pool, so
    the code path is identical).  A ``session`` — or one passed to
    :meth:`run` — receives every :class:`ScenarioResult` as it completes;
    scenarios already recorded in a resumed session are *not* re-executed,
    their stored results are spliced into the output at the right position.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        profile: str = "paper",
        seed: int = 2024,
        executor: Optional[Executor] = None,
        jobs: int = 1,
        session: Optional[RunSession] = None,
        cache: Optional[ResultCache] = None,
        baselines: Optional[BaselinePreparer] = None,
        suite: Union[str, Suite, None] = None,
    ) -> None:
        super().__init__(
            config=config, profile=profile, seed=seed, executor=executor,
            baselines=baselines, suite=suite,
        )
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = min(jobs, MAX_JOBS)
        self.session = session
        self.cache = cache

    # ------------------------------------------------------------------
    def run(
        self,
        models: Optional[Iterable[str]] = None,
        directions: Optional[Iterable[str]] = None,
        apps: Optional[Iterable[str]] = None,
        progress: Optional[callable] = None,
        session: Optional[RunSession] = None,
    ) -> List[ScenarioResult]:
        session = session or self.session
        fingerprint = self.config_fingerprint
        if session is not None:
            session.bind(self.profile, self.seed, fingerprint)

        scenarios = self.scenarios(models, directions, apps)
        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)

        pending: List[int] = []
        for i, scenario in enumerate(scenarios):
            recorded = session.get(scenario) if session is not None else None
            if recorded is not None:
                results[i] = recorded
                continue
            if self.cache is not None:
                replayed = self.cache.get(
                    scenario, self.profile, self.seed, fingerprint
                )
                if replayed is not None:
                    results[i] = replayed
                    if session is not None:
                        session.record(replayed)
                    continue
            pending.append(i)

        if pending:
            with ThreadPoolExecutor(
                max_workers=min(self.jobs, len(pending)),
                thread_name_prefix="repro-grid",
            ) as pool:
                futures = {
                    pool.submit(self.run_scenario, scenarios[i]): i for i in pending
                }
                try:
                    for future in as_completed(futures):
                        i = futures[future]
                        res = future.result()  # worker exceptions surface here
                        results[i] = res
                        if self.cache is not None:
                            self.cache.put(res, self.profile, self.seed, fingerprint)
                        if session is not None:
                            session.record(res)
                        if progress is not None:
                            progress(res)
                except BaseException:
                    # Don't let queued scenarios burn a full grid's wall-clock
                    # during shutdown; in-flight ones finish and are lost.
                    for f in futures:
                        f.cancel()
                    raise

        return list(results)
