"""Parallel execution of the §V experiment grid.

The 80-scenario evaluation is embarrassingly parallel: every (model,
direction, app) cell is an independent pipeline run that shares only the
read-only app sources and the baseline cache.  :class:`ParallelExperimentRunner`
shards the grid across a worker pool while keeping three guarantees the
serial runner provides for free:

* **deterministic ordering** — results come back in scenario-enumeration
  order regardless of which worker finished first, so table renderers and
  downstream statistics see the exact same sequence as ``ExperimentRunner``;
* **single baseline build per app** — thread workers share one
  :class:`~repro.pipeline.BaselinePreparer`, whose per-key locks make
  concurrent first requests for the same baseline compile it exactly once
  (process workers each hold their own preparer + compile cache);
* **identical per-scenario behaviour** — each scenario constructs its own
  seeded :class:`SimulatedLLM` and pipeline, so statuses and metrics do not
  depend on ``jobs`` or ``backend`` (the determinism tests pin this).

Two backends are available:

* ``backend="thread"`` (default) — a :class:`ThreadPoolExecutor`.  Right
  for latency-bound work (real LLM round-trips) and zero-copy sharing of
  baselines, but the pure-Python pipeline compute is GIL-serialized.
* ``backend="process"`` — a :class:`ProcessPoolExecutor`.  Each worker
  process rebuilds runner state from a picklable spec (``PipelineConfig``,
  profile, seed, suite, and the concrete runner class) and ships
  :meth:`ScenarioResult.to_dict` payloads back; the parent deserializes
  them and feeds the same session/cache/progress plumbing.  This is what
  lets grid throughput scale with cores for CPU-bound simulated runs.

Pair either backend with a :class:`~repro.experiments.session.RunSession`
to persist every result as it completes and to resume an interrupted grid.
"""

from __future__ import annotations

import os
from concurrent.futures import (
    Executor as _FuturesExecutor,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
)
from typing import Dict, Iterable, List, Optional, Union

from repro.experiments.cache import ResultCache
from repro.experiments.runner import ExperimentRunner, Scenario, ScenarioResult
from repro.experiments.session import RunSession
from repro.hecbench import Suite
from repro.pipeline import BaselinePreparer, PipelineConfig
from repro.telemetry import (
    TraceWriter,
    get_logger,
    install_sigterm_handler,
    record_run,
    trace_path_for,
)
from repro.toolchain import Executor

logger = get_logger("experiments.parallel")

#: Upper bound on pool workers, derived from the machine: thread workers
#: are latency-bound (LLM round-trips) so modest oversubscription helps,
#: while anything past a few times the core count only adds scheduler noise.
MAX_JOBS = max(8, 4 * (os.cpu_count() or 1))

#: Recognized execution backends.
BACKENDS = ("thread", "process")


def resolve_jobs(jobs: Union[int, str]) -> int:
    """Normalize a jobs spelling: ``"auto"`` / ``0`` mean one per core.

    Returns a positive int; raises :class:`ValueError` for anything else
    (negative counts, unknown strings).
    """
    if isinstance(jobs, bool):
        # bool is an int subclass: False would otherwise match `jobs == 0`.
        raise ValueError(f"jobs must be a positive int, 0 or 'auto', got {jobs!r}")
    if jobs == "auto" or jobs == 0:
        return os.cpu_count() or 1
    if not isinstance(jobs, int):
        raise ValueError(f"jobs must be a positive int, 0 or 'auto', got {jobs!r}")
    if jobs < 0:
        raise ValueError(f"jobs must be >= 0 (0 means auto), got {jobs}")
    return jobs


# ----------------------------------------------------------------------
# Process-backend worker plumbing.  The worker rebuilds an ExperimentRunner
# once per process (initializer) and then serves scenario dicts; results
# travel back as plain dicts so nothing non-picklable crosses the pipe.

_WORKER_RUNNER: Optional[ExperimentRunner] = None


def _init_process_worker(
    runner_class: type,
    config: PipelineConfig,
    profile: str,
    seed: int,
    suite: Suite,
    trace: bool = False,
) -> None:
    global _WORKER_RUNNER
    _WORKER_RUNNER = runner_class(
        config=config, profile=profile, seed=seed, suite=suite, trace=trace
    )
    if trace:
        # A reaped worker (SIGTERM from a shard manager) dumps its flight
        # ring before dying, so the shard is debuggable from artifacts.
        install_sigterm_handler()


def _run_scenario_in_worker(scenario_dict: Dict[str, str]) -> dict:
    assert _WORKER_RUNNER is not None, "worker initializer did not run"
    result = _WORKER_RUNNER.run_scenario(Scenario.from_dict(scenario_dict))
    # Per-stage wall times ride along so the parent's in-memory results
    # carry the same telemetry as thread-backend ones (sessions and the
    # cache still serialize without timings — byte-determinism).
    return result.to_dict(include_timings=True)


class ParallelExperimentRunner(ExperimentRunner):
    """Runs the evaluation grid on a worker pool, optionally session-backed.

    ``jobs=1`` degenerates to serial execution (still through the pool, so
    the code path is identical); ``jobs=0`` or ``jobs="auto"`` resolve to
    the machine's core count.  A ``session`` — or one passed to
    :meth:`run` — receives every :class:`ScenarioResult` as it completes;
    scenarios already recorded in a resumed session are *not* re-executed,
    their stored results are spliced into the output at the right position.
    """

    def __init__(
        self,
        config: Optional[PipelineConfig] = None,
        profile: str = "paper",
        seed: int = 2024,
        executor: Optional[Executor] = None,
        jobs: Union[int, str] = 1,
        session: Optional[RunSession] = None,
        cache: Optional[ResultCache] = None,
        baselines: Optional[BaselinePreparer] = None,
        suite: Union[str, Suite, None] = None,
        backend: str = "thread",
        trace: bool = False,
    ) -> None:
        super().__init__(
            config=config, profile=profile, seed=seed, executor=executor,
            baselines=baselines, suite=suite, trace=trace,
        )
        if backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {backend!r}; expected one of {BACKENDS}"
            )
        self.jobs = min(resolve_jobs(jobs), MAX_JOBS)
        self.backend = backend
        self.session = session
        self.cache = cache

    # ------------------------------------------------------------------
    def run(
        self,
        models: Optional[Iterable[str]] = None,
        directions: Optional[Iterable[str]] = None,
        apps: Optional[Iterable[str]] = None,
        progress: Optional[callable] = None,
        session: Optional[RunSession] = None,
        scenario_indexes: Optional[List[int]] = None,
    ) -> List[ScenarioResult]:
        session = session or self.session
        fingerprint = self.config_fingerprint
        if session is not None:
            session.bind(self.profile, self.seed, fingerprint)

        scenarios = self.scenarios(models, directions, apps)
        if scenario_indexes is not None:
            # A shard of the grid: the caller selects positions within the
            # deterministic enumeration order (campaign sharding computes
            # them from the shard spec).  Output order stays enumeration
            # order restricted to the subset.
            scenarios = [scenarios[i] for i in scenario_indexes]
        results: List[Optional[ScenarioResult]] = [None] * len(scenarios)

        pending: List[int] = []
        for i, scenario in enumerate(scenarios):
            recorded = session.get(scenario) if session is not None else None
            if recorded is not None:
                results[i] = recorded
                continue
            if self.cache is not None:
                replayed = self.cache.get(
                    scenario, self.profile, self.seed, fingerprint
                )
                if replayed is not None:
                    results[i] = replayed
                    if session is not None:
                        session.record(replayed)
                    continue
            pending.append(i)

        trace_writer: Optional[TraceWriter] = None
        if self.trace and session is not None:
            # The timing sidecar rides next to the session log; the
            # session JSONL itself stays byte-deterministic.
            trace_writer = TraceWriter(
                trace_path_for(session.path), resume=session.resume
            )

        try:
            if pending:
                logger.debug(
                    "running %d scenario(s) on the %s backend (jobs=%d)",
                    len(pending), self.backend, self.jobs,
                )
                if self.backend == "process":
                    self._run_pool(
                        self._process_pool(len(pending)),
                        scenarios, pending, results,
                        session, progress, fingerprint, trace_writer,
                    )
                else:
                    self._run_pool(
                        ThreadPoolExecutor(
                            max_workers=min(self.jobs, len(pending)),
                            thread_name_prefix="repro-grid",
                        ),
                        scenarios, pending, results,
                        session, progress, fingerprint, trace_writer,
                    )
        finally:
            if trace_writer is not None:
                trace_writer.close()

        return list(results)

    # ------------------------------------------------------------------
    def _process_pool(self, pending_count: int) -> ProcessPoolExecutor:
        """A worker-process pool whose initializer rebuilds this runner.

        ``type(self)`` rides along so subclasses that override
        :meth:`run_scenario` (e.g. latency-model benchmark runners) keep
        their behaviour inside the workers — the class must therefore be
        importable/picklable (defined at module top level).
        """
        return ProcessPoolExecutor(
            max_workers=min(self.jobs, pending_count),
            initializer=_init_process_worker,
            initargs=(
                type(self), self.config, self.profile, self.seed,
                self.suite, self.trace,
            ),
        )

    def _run_pool(
        self,
        pool: _FuturesExecutor,
        scenarios: List[Scenario],
        pending: List[int],
        results: List[Optional[ScenarioResult]],
        session: Optional[RunSession],
        progress: Optional[callable],
        fingerprint: str,
        trace_writer: Optional[TraceWriter] = None,
    ) -> None:
        """Execute ``pending`` on ``pool``, streaming results as they land.

        Both backends share this loop: the thread backend submits
        :meth:`run_scenario` directly, the process backend submits the
        module-level worker shim and rehydrates the returned dict.  Either
        way every completed scenario is cached, recorded to the session and
        reported to ``progress`` immediately, and ``results`` is filled by
        original index so the final ordering is deterministic.
        """
        in_process = isinstance(pool, ProcessPoolExecutor)
        with pool:
            if in_process:
                futures = {
                    pool.submit(
                        _run_scenario_in_worker, scenarios[i].to_dict()
                    ): i
                    for i in pending
                }
            else:
                futures = {
                    pool.submit(self.run_scenario, scenarios[i]): i
                    for i in pending
                }
            try:
                for future in as_completed(futures):
                    i = futures[future]
                    res = future.result()  # worker exceptions surface here
                    if in_process:
                        res = ScenarioResult.from_dict(res)
                        # The pipeline ran in the worker, so the worker's
                        # counter incremented, not ours; keep campaign
                        # accounting (executed vs replayed) correct here.
                        with self._counter_lock:
                            self.pipeline_runs += 1
                        if self.trace:
                            # Worker registries die with the pool: fold the
                            # shipped telemetry into the parent's metrics so
                            # every run counts exactly once either way.
                            record_run(
                                str(res.result.status),
                                res.result.self_corrections,
                                len(res.result.attempts),
                                res.result.spans,
                            )
                    results[i] = res
                    if trace_writer is not None and res.result.spans:
                        trace_writer.write_trace(
                            {
                                "model": res.scenario.model_key,
                                "direction": res.scenario.direction,
                                "app": res.scenario.app_name,
                            },
                            res.result.spans,
                        )
                    if self.cache is not None:
                        self.cache.put(res, self.profile, self.seed, fingerprint)
                    if session is not None:
                        session.record(res)
                    if progress is not None:
                        progress(res)
            except BaseException:
                # Don't let queued scenarios burn a full grid's wall-clock
                # during shutdown; in-flight ones finish and are lost.
                for f in futures:
                    f.cancel()
                raise
