"""Declarative experiment campaigns: ablation sweeps over the §V grid.

A :class:`CampaignSpec` names a grid subset (models x directions x apps)
and a list of :class:`Variant`\\ s; each variant overrides
:class:`~repro.pipeline.PipelineConfig` fields (the ablation switches),
picks a profile, and lists one seed per stochastic replicate.  Running a
campaign expands every (variant, seed) cell into one
:class:`~repro.experiments.parallel.ParallelExperimentRunner` grid, all
sharing a single :class:`~repro.pipeline.BaselinePreparer` (each HeCBench
baseline builds once campaign-wide) and a single content-addressed
:class:`~repro.experiments.cache.ResultCache` (identical cells — same
scenario, profile, seed and config fingerprint — execute once and are
replayed everywhere else, including on re-runs of the campaign).

On disk a campaign is a directory::

    <root>/<campaign-name>/
        manifest.json            # spec + per-cell status (rewritten per cell)
        cache/                   # shared ResultCache entries
        sessions/<variant>-seed<seed>.jsonl   # one RunSession per cell

Both levels of resume compose: killing a campaign midway loses at most the
in-flight scenarios — finished cells are replayed from their sessions, the
interrupted cell resumes scenario-by-scenario from its session, and any
cell sharing config with a finished one replays from the cache.

Built-in presets (:data:`PRESETS`) reproduce the paper's ablations:

* ``knowledge-ablation``      — drop the §III-B language-knowledge document;
* ``self-correction-ablation`` — disable the §III-D feedback loops;
* ``max-corrections-sweep``   — sweep the §III-D iteration cap around the
  paper's worst successful cell (34 corrections, Codestral/pathfinder);
* ``stochastic-replicates``   — multi-seed stochastic replicates reported
  as mean ± stddev (dispersion, not single numbers).
"""

from __future__ import annotations

import copy
import json
import os
import re
from contextlib import nullcontext
from dataclasses import asdict, dataclass, field, fields, replace
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.experiments.cache import ResultCache
from repro.experiments.store import CacheStore, RESULTS_NAMESPACE, open_store
from repro.metrics.aggregate import merge_stage_seconds
from repro.metrics.runtime import speedup_distribution
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.runner import ExperimentRunner, Scenario, ScenarioResult
from repro.experiments.session import RunSession
from repro.pipeline import BaselinePreparer, PipelineConfig
from repro.telemetry import (
    diff_snapshots,
    merge_snapshots,
    merge_trace_files,
    snapshot as metrics_snapshot,
    trace_path_for,
)
from repro.toolchain import Executor, PersistentCompileCache, compile_cache_scope

#: Bumped when the manifest shape changes incompatibly.
MANIFEST_FORMAT_VERSION = 1

MANIFEST_NAME = "manifest.json"

#: Shard-spec syntax accepted by ``--shard`` / ``CampaignRunner(shard=)``.
_SHARD_RE = re.compile(r"^(\d+)/(\d+)$")

#: Partial-manifest naming for sharded runs (``manifest.shard-0-of-2.json``).
_SHARD_MANIFEST_RE = re.compile(r"^manifest\.shard-(\d+)-of-(\d+)\.json$")

#: Per-cell session naming for sharded runs.
_SHARD_SESSION_SUFFIX = ".shard-{index}-of-{count}.jsonl"
_SHARD_SESSION_RE = re.compile(r"\.shard-\d+-of-\d+\.jsonl$")

DEFAULT_SEED = 2024

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")

_CONFIG_FIELDS = {f.name for f in fields(PipelineConfig)}


class CampaignError(ReproError):
    """Raised for invalid specs and unusable campaign directories."""


def parse_shard_spec(
    shard: Union[str, Tuple[int, int], None],
) -> Optional[Tuple[int, int]]:
    """Normalize a shard spec — ``"i/N"`` or ``(i, N)`` — to a tuple.

    ``None`` means unsharded.  ``i`` is the zero-based shard index,
    ``N`` the shard count; ``0 <= i < N`` is enforced here so every
    downstream consumer can trust the tuple.
    """
    if shard is None:
        return None
    if isinstance(shard, str):
        match = _SHARD_RE.match(shard.strip())
        if not match:
            raise CampaignError(
                f"shard spec {shard!r} must look like i/N (e.g. 0/2)"
            )
        index, count = int(match.group(1)), int(match.group(2))
    else:
        try:
            index, count = int(shard[0]), int(shard[1])
        except (TypeError, ValueError, IndexError):
            raise CampaignError(
                f"shard spec {shard!r} must be 'i/N' or an (i, N) pair"
            ) from None
    if count < 1:
        raise CampaignError(f"shard count must be >= 1, got {count}")
    if not 0 <= index < count:
        raise CampaignError(
            f"shard index {index} out of range for {count} shard(s)"
        )
    return (index, count)


def shard_manifest_name(index: int, count: int) -> str:
    """The partial-manifest file name for one shard of an ``N``-way run."""
    return f"manifest.shard-{index}-of-{count}.json"


def shard_cell_indexes(
    cell_index: int, grid_size: int, shard: Tuple[int, int]
) -> List[int]:
    """This shard's scenario positions within one cell's enumeration.

    The campaign's work units are the flattened variant×scenario cells in
    deterministic order (cell-major, scenario-minor); shard ``(i, n)``
    takes every unit whose flat index is ``i`` modulo ``n``.  Together the
    ``n`` shards partition the flat list exactly — disjoint and complete —
    which the merge re-verifies from the recorded sessions.
    """
    index, count = shard
    return [
        j for j in range(grid_size)
        if (cell_index * grid_size + j) % count == index
    ]


def _check_name(kind: str, name: str) -> str:
    if not _NAME_RE.match(name):
        raise CampaignError(
            f"{kind} name {name!r} must match {_NAME_RE.pattern} "
            f"(it becomes a file name)"
        )
    return name


# ----------------------------------------------------------------------
@dataclass
class Variant:
    """One arm of a campaign: a config delta, a profile, and its seeds."""

    name: str
    overrides: Dict[str, Any] = field(default_factory=dict)
    profile: str = "paper"
    seeds: List[int] = field(default_factory=lambda: [DEFAULT_SEED])
    description: str = ""

    def __post_init__(self) -> None:
        _check_name("variant", self.name)
        unknown = set(self.overrides) - _CONFIG_FIELDS
        if unknown:
            raise CampaignError(
                f"variant {self.name!r} overrides unknown PipelineConfig "
                f"field(s): {', '.join(sorted(unknown))}"
            )
        if self.profile not in ("paper", "stochastic"):
            raise CampaignError(
                f"variant {self.name!r} has unknown profile {self.profile!r}"
            )
        if not self.seeds:
            raise CampaignError(f"variant {self.name!r} has no seeds")
        if len(set(self.seeds)) != len(self.seeds):
            raise CampaignError(f"variant {self.name!r} repeats a seed")

    def config(self, base: PipelineConfig) -> PipelineConfig:
        return replace(base, **self.overrides)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "overrides": dict(self.overrides),
            "profile": self.profile,
            "seeds": list(self.seeds),
            "description": self.description,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Variant":
        return cls(
            name=data["name"],
            overrides=dict(data.get("overrides", {})),
            profile=data.get("profile", "paper"),
            seeds=list(data.get("seeds", [DEFAULT_SEED])),
            description=data.get("description", ""),
        )


@dataclass
class CampaignSpec:
    """A named sweep: grid subset + variants + the base configuration.

    ``suite`` names the application suite the grid enumerates — a
    registered suite (``table4``), a dynamic one
    (``synth:stencil,reduction:seeds=2``) or a merged view; ``apps``
    still filters within it.
    """

    name: str
    variants: List[Variant]
    models: Optional[List[str]] = None
    directions: Optional[List[str]] = None
    apps: Optional[List[str]] = None
    suite: str = "table4"
    description: str = ""
    base_config: PipelineConfig = field(default_factory=PipelineConfig)

    def __post_init__(self) -> None:
        _check_name("campaign", self.name)
        if not self.variants:
            raise CampaignError(f"campaign {self.name!r} has no variants")
        names = [v.name for v in self.variants]
        if len(set(names)) != len(names):
            raise CampaignError(
                f"campaign {self.name!r} repeats a variant name"
            )

    def cells(self) -> List["CampaignCell"]:
        """Every (variant, seed) execution cell, variant-major."""
        return [
            CampaignCell(variant=v, seed=s)
            for v in self.variants
            for s in v.seeds
        ]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "name": self.name,
            "description": self.description,
            "models": self.models,
            "directions": self.directions,
            "apps": self.apps,
            "suite": self.suite,
            "base_config": asdict(self.base_config),
            "variants": [v.to_dict() for v in self.variants],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CampaignSpec":
        base = data.get("base_config", {})
        unknown = set(base) - _CONFIG_FIELDS
        if unknown:
            raise CampaignError(
                f"campaign {data.get('name')!r} base_config has unknown "
                f"field(s): {', '.join(sorted(unknown))}"
            )
        return cls(
            name=data["name"],
            description=data.get("description", ""),
            models=data.get("models"),
            directions=data.get("directions"),
            apps=data.get("apps"),
            suite=data.get("suite", "table4"),
            base_config=PipelineConfig(**base),
            variants=[Variant.from_dict(v) for v in data.get("variants", [])],
        )


@dataclass(frozen=True)
class CampaignCell:
    """One executable unit: a variant under one seed."""

    variant: Variant
    seed: int

    @property
    def session_name(self) -> str:
        return f"{self.variant.name}-seed{self.seed}.jsonl"

    def session_name_for(self, shard: Optional[Tuple[int, int]]) -> str:
        """Session file name, shard-suffixed for partial (sharded) runs."""
        if shard is None:
            return self.session_name
        stem = f"{self.variant.name}-seed{self.seed}"
        return stem + _SHARD_SESSION_SUFFIX.format(
            index=shard[0], count=shard[1]
        )


@dataclass
class CellRun:
    """A completed (or loaded) cell plus its results."""

    variant: Variant
    seed: int
    results: List[ScenarioResult]
    config_fingerprint: str
    expected_scenarios: int
    pipeline_runs: int = 0  # scenarios actually executed (not replayed)
    #: Accumulated per-stage wall seconds over the cell's executed
    #: pipelines (telemetry from the event bus; replayed scenarios
    #: contribute nothing).  Persisted in the manifest, not the sessions.
    stage_seconds: Dict[str, float] = field(default_factory=dict)
    #: Deterministic performance summary over the cell's scored results
    #: (speedup-ratio distribution + scenario counts).  Unlike
    #: ``stage_seconds`` it derives from session-persisted ratios, so
    #: replayed and executed runs produce identical blocks.
    perf: Optional[Dict[str, Any]] = None

    @property
    def complete(self) -> bool:
        return len(self.results) >= self.expected_scenarios


def cell_perf_summary(results: List[ScenarioResult]) -> Dict[str, Any]:
    """The manifest's per-cell ``perf`` block.

    Built purely from session-persisted fields (success status and the
    Ratio column), so the block is byte-identical whether the cell was
    executed, replayed from its session, or merged from shards — which
    is why :func:`normalize_manifest` does *not* strip it.
    """
    ratios = [
        sr.result.ratio
        for sr in results
        if sr.result.ok and sr.result.ratio is not None
    ]
    return {
        "scenarios": len(results),
        "scored": len(ratios),
        "speedup": speedup_distribution(ratios),
    }


@dataclass
class CampaignResult:
    """Everything a campaign produced, cell by cell (variant-major)."""

    spec: CampaignSpec
    directory: Path
    runs: List[CellRun]

    def by_variant(self) -> Dict[str, List[CellRun]]:
        grouped: Dict[str, List[CellRun]] = {v.name: [] for v in self.spec.variants}
        for run in self.runs:
            grouped[run.variant.name].append(run)
        return grouped

    @property
    def total_pipeline_runs(self) -> int:
        return sum(r.pipeline_runs for r in self.runs)


def _grid_identity(suite, models, directions, apps):
    """Canonical identity of one grid subset, for manifest comparison.

    The suite spec string is resolved to its app-name list (two spellings
    of one suite compare equal) and an explicit app filter is
    canonicalized through the suite's case-insensitive lookup.  Anything
    unresolvable falls back to its raw value — comparison still works, it
    is just spelling-sensitive for that component.
    """
    from repro.hecbench import resolve_suite

    try:
        resolved = resolve_suite(suite)
    except ReproError:
        return {
            "suite": suite, "models": models, "directions": directions,
            "apps": apps,
        }
    canon_apps = None
    if apps is not None:
        canon_apps = []
        for name in apps:
            try:
                canon_apps.append(resolved.get(name).name)
            except ReproError:
                canon_apps.append(name)
    return {
        "suite": resolved.app_names(),
        "models": models,
        "directions": directions,
        "apps": canon_apps,
    }


# ----------------------------------------------------------------------
class CampaignRunner:
    """Executes a :class:`CampaignSpec` into a campaign directory."""

    def __init__(
        self,
        spec: CampaignSpec,
        root: Union[str, Path] = "campaigns",
        jobs: Union[int, str] = 1,
        executor: Optional[Executor] = None,
        log: Optional[Callable[[str], None]] = None,
        backend: str = "thread",
        cache_store: Union[str, Path, CacheStore, None] = None,
        shard: Union[str, Tuple[int, int], None] = None,
        trace: bool = False,
    ) -> None:
        self.spec = spec
        self.directory = Path(root) / spec.name
        self.jobs = jobs
        self.backend = backend
        #: Telemetry switch: each cell runner traces its pipelines, every
        #: cell session gets a ``.trace.jsonl`` sidecar, and the manifest
        #: carries this run's metrics delta under ``"telemetry"``.
        self.trace = trace
        self._metrics_before = metrics_snapshot() if trace else None
        #: Set by :func:`merge_manifests` to publish the shards' merged
        #: telemetry instead of this process's (empty) delta.
        self._telemetry: Optional[Dict[str, Any]] = None
        self.executor = executor or Executor()
        self.baselines = BaselinePreparer(self.executor)
        #: ``(index, count)`` when this runner executes one shard of the
        #: campaign; its manifest and sessions get shard-suffixed names
        #: and ``merge_manifests`` fuses them into the canonical artifacts.
        self.shard = parse_shard_spec(shard)
        #: Shared pluggable store (``dir:<path>`` / ``sqlite:<path>`` URI,
        #: path, or an open CacheStore).  When given, scenario results go
        #: through it under the ``results`` namespace and compilations are
        #: persisted under ``compile``; when absent, the historical
        #: per-campaign-directory cache tree is used.
        self.cache_store: Optional[CacheStore] = (
            open_store(cache_store) if cache_store is not None else None
        )
        if self.cache_store is not None:
            self.cache = ResultCache(
                store=self.cache_store, namespace=RESULTS_NAMESPACE
            )
        else:
            self.cache = ResultCache(self.directory / "cache")
        self.sessions_dir = self.directory / "sessions"
        self.sessions_dir.mkdir(parents=True, exist_ok=True)
        self._log = log or (lambda _msg: None)
        # Resolved once so dynamic suites (synth:...) generate one app set
        # shared by every cell.
        from repro.hecbench import resolve_suite

        try:
            self.suite = resolve_suite(spec.suite)
        except ReproError as exc:
            raise CampaignError(
                f"campaign {spec.name!r} has an unusable suite "
                f"{spec.suite!r}: {exc}"
            ) from exc
        manifest = self._check_existing_manifest()
        #: Per-cell stage timings recorded by earlier runs of this
        #: directory.  Scenarios replayed from sessions/cache execute no
        #: pipeline and collect no telemetry, so the rewritten manifest
        #: merges the previously measured attribution with whatever the
        #: resumed run adds instead of blanking or undercounting it.
        self._prior_stage_seconds: Dict[Any, Dict[str, float]] = {}
        if isinstance(manifest, dict):
            for entry in manifest.get("cells", []):
                if isinstance(entry, dict) and entry.get("stage_seconds"):
                    key = (entry.get("variant"), entry.get("seed"))
                    self._prior_stage_seconds[key] = dict(entry["stage_seconds"])
        #: Scenarios per cell, known before any cell runs — the manifest
        #: records it so loaders can tell truncated cells from finished
        #: ones.  Enumerating also validates spec.apps against the suite,
        #: so an out-of-suite filter fails here, not mid-run.
        try:
            self._grid_size = len(
                ExperimentRunner(
                    executor=self.executor, baselines=self.baselines,
                    suite=self.suite,
                ).scenarios(spec.models, spec.directions, spec.apps)
            )
        except ReproError as exc:
            raise CampaignError(
                f"campaign {spec.name!r} has an unusable app filter: {exc}"
            ) from exc

    # ------------------------------------------------------------------
    @property
    def _manifest_path(self) -> Path:
        """This run's manifest: canonical, or the shard's partial one."""
        if self.shard is None:
            return self.directory / MANIFEST_NAME
        return self.directory / shard_manifest_name(*self.shard)

    def _own_sessions(self) -> List[Path]:
        """Session files belonging to *this* run's shard identity.

        A sharded run must ignore sibling shards' sessions (they share the
        campaign directory by design), and an unsharded run must ignore
        shard-suffixed files (a merged directory keeps both layers); each
        only refuses to resume over unaccounted sessions of its own kind.
        """
        if self.shard is not None:
            suffix = _SHARD_SESSION_SUFFIX.format(
                index=self.shard[0], count=self.shard[1]
            )
            return sorted(self.sessions_dir.glob(f"*{suffix}"))
        return sorted(
            p for p in self.sessions_dir.glob("*.jsonl")
            if not _SHARD_SESSION_RE.search(p.name)
            and not p.name.endswith(".trace.jsonl")
        )

    def _check_existing_manifest(self) -> Optional[dict]:
        """Refuse to resume a directory recorded under a different grid.

        Returns the parsed manifest (or None when absent/unreadable) so
        the caller can reuse the single parse.

        The directory is keyed by campaign name and its per-cell sessions
        validate profile/seed/config — but not the grid subset.  Re-running
        the same name with a different suite/models/directions/apps (e.g.
        ``campaign run <name> --suite ...``) would append a second
        experiment's scenarios to the same session files and silently blend
        both into one report.  A missing or unreadable manifest is only
        ignored when no session files exist either (a truly fresh
        directory); sessions without a readable manifest cannot be tied to
        any grid, so resuming over them is refused too.
        """
        path = self._manifest_path
        manifest = None
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            manifest = None
        recorded_spec = (
            manifest.get("spec") if isinstance(manifest, dict) else None
        )
        if not isinstance(recorded_spec, dict):
            leftovers = self._own_sessions()
            if leftovers:
                raise CampaignError(
                    f"campaign directory {self.directory} has "
                    f"{len(leftovers)} session file(s) but no readable "
                    f"manifest; cannot verify they belong to this grid — "
                    f"delete the directory (or its sessions/) to start over"
                )
            return manifest
        recorded_raw = {
            "suite": recorded_spec.get("suite", "table4"),
            "models": recorded_spec.get("models"),
            "directions": recorded_spec.get("directions"),
            "apps": recorded_spec.get("apps"),
        }
        current_raw = {
            "suite": self.spec.suite,
            "models": self.spec.models,
            "directions": self.spec.directions,
            "apps": self.spec.apps,
        }
        # Compare canonical identities, not raw strings: two spellings of
        # the same suite (e.g. 'synth:scan:seeds=1' and its canonical
        # 'synth:scan:seeds=1:difficulty=1') or a case-variant app filter
        # enumerate the identical grid and must resume, not refuse.
        recorded = _grid_identity(**recorded_raw)
        current = _grid_identity(**current_raw)
        if recorded != current:
            diffs = ", ".join(
                f"{key}: {recorded_raw[key]!r} -> {current_raw[key]!r}"
                for key in current
                if recorded[key] != current[key]
            )
            raise CampaignError(
                f"campaign directory {self.directory} was recorded under a "
                f"different grid ({diffs}); resuming would blend two "
                f"experiments — use a new campaign name or --dir, or delete "
                f"the directory to start over"
            )
        return manifest

    # ------------------------------------------------------------------
    def _cell_scenario_indexes(self, cell_index: int) -> Optional[List[int]]:
        """This run's scenario positions for one cell (None = all)."""
        if self.shard is None:
            return None
        return shard_cell_indexes(cell_index, self._grid_size, self.shard)

    def _cell_expected(self, cell_index: int) -> int:
        """How many scenarios this run owes the cell (shard-local)."""
        indexes = self._cell_scenario_indexes(cell_index)
        return self._grid_size if indexes is None else len(indexes)

    def run(self, progress: Optional[Callable] = None) -> CampaignResult:
        """Execute every cell, persisting sessions + manifest as it goes.

        With a shared ``cache_store``, compilations inside the run are
        also persisted to it (the ``compile`` namespace) through a
        process-wide :func:`~repro.toolchain.compile_cache_scope`.
        """
        scope = (
            compile_cache_scope(PersistentCompileCache(self.cache_store))
            if self.cache_store is not None
            else nullcontext()
        )
        with scope:
            return self._run_cells(progress)

    def _run_cells(self, progress: Optional[Callable]) -> CampaignResult:
        runs: List[CellRun] = []
        cells = self.spec.cells()
        self._write_manifest(runs, cells)
        for cell_index, cell in enumerate(cells):
            config = cell.variant.config(self.spec.base_config)
            session = RunSession(
                self.sessions_dir / cell.session_name_for(self.shard),
                resume=True,
            )
            already = len(session)
            runner = ParallelExperimentRunner(
                config=config,
                profile=cell.variant.profile,
                seed=cell.seed,
                executor=self.executor,
                jobs=self.jobs,
                session=session,
                cache=self.cache,
                baselines=self.baselines,
                suite=self.suite,
                backend=self.backend,
                trace=self.trace,
            )
            results = runner.run(
                models=self.spec.models,
                directions=self.spec.directions,
                apps=self.spec.apps,
                progress=progress,
                scenario_indexes=self._cell_scenario_indexes(cell_index),
            )
            # This run's telemetry (replayed scenarios contribute nothing),
            # merged with what earlier runs of this directory measured for
            # the scenarios now being replayed.  Limitation: the manifest
            # records a cell only once it completes, so a cell interrupted
            # mid-grid resumes with no prior entry and its attribution
            # covers just the scenarios executed after the restart.
            prior = self._prior_stage_seconds.get(
                (cell.variant.name, cell.seed), {}
            )
            stage_seconds = {
                stage: stats.total_seconds
                for stage, stats in merge_stage_seconds(
                    [prior] + [sr.result.stage_seconds for sr in results]
                ).items()
            }
            runs.append(CellRun(
                variant=cell.variant,
                seed=cell.seed,
                results=results,
                config_fingerprint=config.fingerprint(),
                expected_scenarios=self._cell_expected(cell_index),
                pipeline_runs=runner.pipeline_runs,
                stage_seconds=stage_seconds,
                perf=cell_perf_summary(results),
            ))
            self._log(
                f"variant {cell.variant.name} seed {cell.seed}: "
                f"{len(results)} scenario(s) — {runner.pipeline_runs} "
                f"executed, {already} from session, "
                f"{len(results) - already - runner.pipeline_runs} from cache"
            )
            self._write_manifest(runs, cells)
        return CampaignResult(
            spec=self.spec, directory=self.directory, runs=runs
        )

    # ------------------------------------------------------------------
    def _write_manifest(
        self, runs: List[CellRun], cells: List[CampaignCell]
    ) -> None:
        done = {(r.variant.name, r.seed): r for r in runs}
        cell_entries = []
        for cell_index, cell in enumerate(cells):
            run = done.get((cell.variant.name, cell.seed))
            cell_entries.append({
                "variant": cell.variant.name,
                "seed": cell.seed,
                "profile": cell.variant.profile,
                "session": f"sessions/{cell.session_name_for(self.shard)}",
                "config_fingerprint": cell.variant.config(
                    self.spec.base_config
                ).fingerprint(),
                "expected_scenarios": self._cell_expected(cell_index),
                "completed": run is not None,
                "scenarios": len(run.results) if run is not None else None,
                "pipeline_runs": run.pipeline_runs if run is not None else None,
                # Where the cell's wall-clock went, stage by stage — lets a
                # campaign attribute latency to generation vs. correction
                # vs. toolchain without re-running anything.
                "stage_seconds": (
                    {k: round(v, 6) for k, v in run.stage_seconds.items()}
                    if run is not None else None
                ),
                # Speedup distribution over the cell's scored scenarios.
                # Deterministic (derived from session-persisted ratios),
                # so equality checks keep it — unlike stage_seconds.
                "perf": run.perf if run is not None else None,
            })
        manifest: Dict[str, Any] = {
            "type": (
                "campaign-manifest" if self.shard is None
                else "campaign-shard-manifest"
            ),
            "version": MANIFEST_FORMAT_VERSION,
            "spec": self.spec.to_dict(),
            "cells": cell_entries,
        }
        if self.shard is not None:
            manifest["shard"] = {
                "index": self.shard[0], "count": self.shard[1],
            }
            # The full (unsharded) per-cell grid size: the merge checks its
            # own enumeration against what the shards were cut from.
            manifest["grid_size"] = self._grid_size
        # Telemetry rides in the manifest only for traced runs; like
        # stage_seconds it is measurement, not science, and is stripped by
        # normalize_manifest for shard-vs-reference equality.
        if self._telemetry is not None:
            manifest["telemetry"] = self._telemetry
        elif self.trace and self._metrics_before is not None:
            manifest["telemetry"] = diff_snapshots(
                self._metrics_before, metrics_snapshot()
            )
        _write_json_atomic(self._manifest_path, manifest)


# ----------------------------------------------------------------------
def _write_json_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_suffix(".json.tmp")
    tmp.write_text(
        json.dumps(payload, indent=2, sort_keys=True), encoding="utf-8"
    )
    os.replace(tmp, path)


def normalize_manifest(manifest: Dict[str, Any]) -> Dict[str, Any]:
    """A manifest with its execution telemetry stripped, for equality checks.

    ``stage_seconds`` is wall-clock attribution — a nondeterministic
    measurement, not a result — and ``pipeline_runs`` counts how many
    pipelines *executed* rather than replayed, which depends on cache and
    session state, not on the experiment (a reference rebuilt from a warm
    store reports 0 where a cold run reports the full grid).  So
    "shard + merge ≡ unsharded" is asserted over everything *except*
    those two.  The CI fan-in gate and the shard tests compare
    ``normalize_manifest(merged) == normalize_manifest(reference)``.
    """
    normalized = copy.deepcopy(manifest)
    normalized.pop("telemetry", None)
    for cell in normalized.get("cells", []):
        if isinstance(cell, dict):
            cell.pop("stage_seconds", None)
            cell.pop("pipeline_runs", None)
    return normalized


def _load_shard_manifests(
    directory: Path,
) -> List[Tuple[int, int, Dict[str, Any]]]:
    """Parse every ``manifest.shard-i-of-N.json`` in a campaign directory."""
    found = []
    for path in sorted(directory.glob("manifest.shard-*.json")):
        match = _SHARD_MANIFEST_RE.match(path.name)
        if not match:
            continue
        try:
            manifest = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError) as exc:
            raise CampaignError(f"unreadable shard manifest {path}: {exc}")
        if (
            not isinstance(manifest, dict)
            or manifest.get("type") != "campaign-shard-manifest"
        ):
            raise CampaignError(f"{path} is not a campaign shard manifest")
        if manifest.get("version") != MANIFEST_FORMAT_VERSION:
            raise CampaignError(
                f"shard manifest {path} has format version "
                f"{manifest.get('version')!r}; this build reads version "
                f"{MANIFEST_FORMAT_VERSION}"
            )
        shard = manifest.get("shard") or {}
        index, count = int(match.group(1)), int(match.group(2))
        if (shard.get("index"), shard.get("count")) != (index, count):
            raise CampaignError(
                f"shard manifest {path} records shard "
                f"{shard.get('index')}/{shard.get('count')} but is named "
                f"{index}-of-{count}"
            )
        found.append((index, count, manifest))
    return found


def merge_manifests(directory: Union[str, Path]) -> CampaignResult:
    """Fuse per-shard partial manifests into the canonical campaign.

    Reads every ``manifest.shard-i-of-N.json`` under ``directory``,
    verifies the shards describe one experiment — same spec, same grid
    identity, same per-cell config fingerprints, a complete 0..N-1 index
    set, every shard cell completed — then re-assembles each cell's
    scenario results from the shard sessions, **refusing** unless the
    shards' coverage is disjoint and complete against the deterministic
    scenario enumeration.  On success the canonical ``manifest.json`` and
    per-cell ``sessions/*.jsonl`` are written exactly as an unsharded run
    would have written them (byte-identical modulo ``stage_seconds``
    telemetry), and the merged :class:`CampaignResult` is returned.

    Traced shards additionally leave ``.trace.jsonl`` sidecars: these are
    fused per cell into a canonical trace file (trace ids remapped to one
    sequential space, metrics deltas summed), and the shard manifests'
    ``telemetry`` blocks merge into the canonical manifest's.
    """
    directory = Path(directory)
    shards = _load_shard_manifests(directory)
    if not shards:
        raise CampaignError(
            f"no shard manifests (manifest.shard-*-of-*.json) in {directory}"
        )
    counts = {count for _idx, count, _m in shards}
    if len(counts) != 1:
        raise CampaignError(
            f"shard manifests in {directory} disagree on the shard count: "
            f"{sorted(counts)}"
        )
    count = counts.pop()
    indexes = [idx for idx, _c, _m in shards]
    if sorted(indexes) != list(range(count)):
        missing = sorted(set(range(count)) - set(indexes))
        raise CampaignError(
            f"incomplete shard set in {directory}: have "
            f"{sorted(indexes)} of {count}, missing {missing}"
        )
    ordered = [m for _i, _c, m in sorted(shards, key=lambda s: s[0])]

    first = ordered[0]
    spec = CampaignSpec.from_dict(first["spec"])
    for manifest in ordered[1:]:
        theirs = manifest["spec"]
        if _grid_identity(
            theirs.get("suite", "table4"), theirs.get("models"),
            theirs.get("directions"), theirs.get("apps"),
        ) != _grid_identity(spec.suite, spec.models, spec.directions,
                            spec.apps):
            raise CampaignError(
                f"shard manifests in {directory} were recorded under "
                f"different grids; refusing to blend two experiments"
            )
        if theirs != first["spec"]:
            raise CampaignError(
                f"shard manifests in {directory} record different campaign "
                f"specs; refusing to merge"
            )

    if directory.name != spec.name:
        raise CampaignError(
            f"campaign directory {directory} is named {directory.name!r} "
            f"but its shard manifests record campaign {spec.name!r}"
        )
    # A full runner re-derives the suite, validates the grid, and gives us
    # the canonical manifest writer; its constructor also refuses if an
    # existing canonical manifest belongs to a different grid.
    runner = CampaignRunner(spec, root=directory.parent)
    grid_sizes = {m.get("grid_size") for m in ordered}
    if grid_sizes != {runner._grid_size}:
        raise CampaignError(
            f"shard manifests in {directory} were cut from a grid of size "
            f"{sorted(grid_sizes)}; this build enumerates "
            f"{runner._grid_size} scenario(s) per cell"
        )
    scenarios = ExperimentRunner(
        executor=runner.executor, baselines=runner.baselines,
        suite=runner.suite,
    ).scenarios(spec.models, spec.directions, spec.apps)
    full_keys = [s.key for s in scenarios]

    cells = spec.cells()
    runs: List[CellRun] = []
    for cell_index, cell in enumerate(cells):
        expected_fp = cell.variant.config(spec.base_config).fingerprint()
        merged: Dict[Any, ScenarioResult] = {}
        owner: Dict[Any, int] = {}
        pipeline_runs = 0
        timing_maps: List[Dict[str, float]] = []
        for shard_index, manifest in enumerate(ordered):
            try:
                entry = manifest["cells"][cell_index]
            except (KeyError, IndexError):
                raise CampaignError(
                    f"shard {shard_index} manifest in {directory} has no "
                    f"cell {cell_index} ({cell.variant.name} "
                    f"seed {cell.seed})"
                )
            if (entry.get("variant"), entry.get("seed")) != (
                cell.variant.name, cell.seed,
            ):
                raise CampaignError(
                    f"shard {shard_index} cell {cell_index} is "
                    f"{entry.get('variant')!r} seed {entry.get('seed')!r}, "
                    f"expected {cell.variant.name!r} seed {cell.seed!r}"
                )
            if entry.get("config_fingerprint") != expected_fp:
                raise CampaignError(
                    f"config fingerprint mismatch for cell "
                    f"{cell.variant.name} seed {cell.seed}: shard "
                    f"{shard_index} recorded "
                    f"{entry.get('config_fingerprint')!r}, this build "
                    f"computes {expected_fp!r}"
                )
            if not entry.get("completed"):
                raise CampaignError(
                    f"shard {shard_index} has not completed cell "
                    f"{cell.variant.name} seed {cell.seed}; run it to "
                    f"completion before merging"
                )
            session_path = directory / entry["session"]
            if not session_path.exists():
                raise CampaignError(
                    f"shard {shard_index} session {session_path} is missing"
                )
            session = RunSession(session_path, resume=True)
            for result in session:
                key = result.scenario.key
                if key in owner:
                    raise CampaignError(
                        f"shards {owner[key]} and {shard_index} both "
                        f"recorded scenario {key} for cell "
                        f"{cell.variant.name} seed {cell.seed}; shard "
                        f"coverage must be disjoint"
                    )
                owner[key] = shard_index
                merged[key] = result
            pipeline_runs += entry.get("pipeline_runs") or 0
            if entry.get("stage_seconds"):
                timing_maps.append(dict(entry["stage_seconds"]))

        extra = sorted(k for k in merged if k not in set(full_keys))
        if extra:
            raise CampaignError(
                f"cell {cell.variant.name} seed {cell.seed} has recorded "
                f"scenario(s) outside the campaign grid: {extra[:3]}"
            )
        missing = [k for k in full_keys if k not in merged]
        if missing:
            raise CampaignError(
                f"cell {cell.variant.name} seed {cell.seed} is missing "
                f"{len(missing)} of {len(full_keys)} scenario(s) after "
                f"merging {count} shard(s) (first missing: {missing[0]}); "
                f"shard coverage must be complete"
            )
        ordered_results = [merged[k] for k in full_keys]

        # Write the canonical per-cell session exactly as an unsharded run
        # would have: header first, then records in enumeration order.
        canonical = runner.sessions_dir / cell.session_name
        tmp = canonical.with_name(canonical.name + ".tmp")
        if tmp.exists():
            tmp.unlink()
        out = RunSession(tmp)
        out.bind(cell.variant.profile, cell.seed, expected_fp)
        for result in ordered_results:
            out.record(result)
        os.replace(tmp, canonical)

        # Traced shards leave per-shard .trace.jsonl sidecars next to
        # their sessions; fuse them (shard order, trace ids remapped to
        # one sequence) into the canonical cell trace.
        shard_traces = [
            trace_path_for(directory / manifest["cells"][cell_index]["session"])
            for manifest in ordered
        ]
        shard_traces = [p for p in shard_traces if p.exists()]
        if shard_traces:
            merge_trace_files(shard_traces, trace_path_for(canonical))

        runs.append(CellRun(
            variant=cell.variant,
            seed=cell.seed,
            results=ordered_results,
            config_fingerprint=expected_fp,
            expected_scenarios=len(full_keys),
            pipeline_runs=pipeline_runs,
            stage_seconds={
                stage: stats.total_seconds
                for stage, stats in merge_stage_seconds(timing_maps).items()
            },
            # Recomputed over the full merged result list, not fused from
            # the shards' partial blocks — identical to what an unsharded
            # run writes (the merge gate compares it).
            perf=cell_perf_summary(ordered_results),
        ))

    shard_telemetry = [
        m["telemetry"] for m in ordered
        if isinstance(m.get("telemetry"), dict)
    ]
    if shard_telemetry:
        runner._telemetry = merge_snapshots(shard_telemetry)
    runner._write_manifest(runs, cells)
    return CampaignResult(spec=spec, directory=directory, runs=runs)


# ----------------------------------------------------------------------
def load_campaign(directory: Union[str, Path]) -> CampaignResult:
    """Rebuild a :class:`CampaignResult` from a campaign directory.

    Reads the manifest and every per-cell session; cells whose sessions are
    missing or partial load with whatever results were recorded (their
    ``complete`` flag reflects the manifest's expected count).
    """
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise CampaignError(f"no campaign manifest at {path}")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise CampaignError(f"unreadable campaign manifest {path}: {exc}")
    if (
        not isinstance(manifest, dict)
        or manifest.get("type") != "campaign-manifest"
    ):
        raise CampaignError(f"{path} is not a campaign manifest")
    if manifest.get("version") != MANIFEST_FORMAT_VERSION:
        raise CampaignError(
            f"campaign manifest {path} has format version "
            f"{manifest.get('version')!r}; this build reads version "
            f"{MANIFEST_FORMAT_VERSION}"
        )
    spec = CampaignSpec.from_dict(manifest["spec"])
    variants = {v.name: v for v in spec.variants}
    runs: List[CellRun] = []
    for entry in manifest.get("cells", []):
        variant = variants.get(entry["variant"])
        if variant is None:
            raise CampaignError(
                f"manifest cell references unknown variant "
                f"{entry['variant']!r}"
            )
        session_path = directory / entry["session"]
        results: List[ScenarioResult] = []
        if session_path.exists():
            results = list(RunSession(session_path, resume=True))
        expected = entry.get("expected_scenarios")
        if expected is None:
            # Manifest predates the field: trust the completed flag so a
            # cell interrupted mid-grid still reports as incomplete.
            completed = bool(entry.get("completed"))
            expected = len(results) if completed else len(results) + 1
        runs.append(CellRun(
            variant=variant,
            seed=entry["seed"],
            results=results,
            config_fingerprint=entry.get("config_fingerprint", ""),
            expected_scenarios=expected,
            pipeline_runs=entry.get("pipeline_runs") or 0,
            stage_seconds=dict(entry.get("stage_seconds") or {}),
            # Recompute from the loaded results (deterministic) so reports
            # stay consistent even against a manifest written mid-cell.
            perf=cell_perf_summary(results) if results else entry.get("perf"),
        ))
    return CampaignResult(spec=spec, directory=directory, runs=runs)


def load_spec_file(path: Union[str, Path]) -> CampaignSpec:
    """Load a declarative :class:`CampaignSpec` from a JSON file."""
    path = Path(path)
    try:
        data = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise CampaignError(f"cannot read campaign spec {path}: {exc}")
    except json.JSONDecodeError as exc:
        raise CampaignError(f"campaign spec {path} is not valid JSON: {exc}")
    if not isinstance(data, dict):
        raise CampaignError(f"campaign spec {path} must be a JSON object")
    return CampaignSpec.from_dict(data)


# ----------------------------------------------------------------------
# Built-in presets reproducing the paper's ablations.

#: The representative grid slice the ablation benchmarks use: 2 models x
#: 5 apps x both directions = 20 scenarios per (variant, seed) cell.
ABLATION_MODELS = ["gpt4", "wizardcoder"]
ABLATION_APPS = ["matrix-rotate", "jacobi", "bsearch", "entropy", "colorwheel"]


def _knowledge_ablation() -> CampaignSpec:
    """§III-B ablation: strip the language-knowledge document + summary."""
    return CampaignSpec(
        name="knowledge-ablation",
        description=(
            "LASSI with vs. without the SIII-B language-knowledge document "
            "(ablated prompting a la Nichols et al.)"
        ),
        models=ABLATION_MODELS,
        apps=ABLATION_APPS,
        variants=[
            Variant(name="baseline", description="full LASSI pipeline"),
            Variant(
                name="no-knowledge",
                overrides={"include_knowledge": False},
                description="SIII-B knowledge document dropped",
            ),
        ],
    )


def _self_correction_ablation() -> CampaignSpec:
    """§III-D ablation: disable the compile/execute feedback loops."""
    return CampaignSpec(
        name="self-correction-ablation",
        description=(
            "LASSI with vs. without the SIII-D self-correcting feedback "
            "loops (single-shot generation)"
        ),
        models=ABLATION_MODELS,
        apps=ABLATION_APPS,
        variants=[
            Variant(name="baseline", description="full LASSI pipeline"),
            Variant(
                name="no-self-correction",
                overrides={"self_correction": False},
                description="SIII-D loops disabled; one attempt only",
            ),
        ],
    )


def _max_corrections_sweep() -> CampaignSpec:
    """§III-D cap sweep around the paper's worst successful cell (34)."""
    caps = (0, 10, 33, 34, 40)
    return CampaignSpec(
        name="max-corrections-sweep",
        description=(
            "SIII-D self-correction cap swept across the success threshold "
            "of Codestral/pathfinder (34 corrections, Table VIIa)"
        ),
        models=["codestral"],
        directions=["cuda2omp"],
        apps=["pathfinder"],
        variants=[
            Variant(
                name=f"cap-{cap}",
                overrides={"max_corrections": cap},
                description=f"max_corrections={cap}",
            )
            for cap in caps
        ],
    )


def _stochastic_replicates() -> CampaignSpec:
    """Multi-seed stochastic replicates: dispersion, not single numbers."""
    seeds = [1, 2, 3, 4, 5]
    return CampaignSpec(
        name="stochastic-replicates",
        description=(
            "stochastic-profile replicates across 5 seeds, reported as "
            "mean +/- stddev per headline metric"
        ),
        models=["gpt4", "codestral"],
        apps=["layout", "entropy", "bsearch"],
        variants=[
            Variant(name="baseline", profile="stochastic", seeds=list(seeds)),
            Variant(
                name="no-knowledge",
                overrides={"include_knowledge": False},
                profile="stochastic",
                seeds=list(seeds),
                description="SIII-B knowledge document dropped",
            ),
        ],
    )


def _synth_sweep() -> CampaignSpec:
    """LASSI over a generated synthetic suite (beyond the Table IV grid)."""
    return CampaignSpec(
        name="synth-sweep",
        description=(
            "LASSI over a generated synthetic suite (2 families x 2 seeds) "
            "with and without the SIII-B knowledge document"
        ),
        suite="synth:stencil,reduction:seeds=2",
        models=["gpt4", "codestral"],
        directions=["omp2cuda"],
        variants=[
            Variant(name="baseline", description="full LASSI pipeline"),
            Variant(
                name="no-knowledge",
                overrides={"include_knowledge": False},
                description="SIII-B knowledge document dropped",
            ),
        ],
    )


PRESETS: Dict[str, Callable[[], CampaignSpec]] = {
    "knowledge-ablation": _knowledge_ablation,
    "self-correction-ablation": _self_correction_ablation,
    "max-corrections-sweep": _max_corrections_sweep,
    "stochastic-replicates": _stochastic_replicates,
    "synth-sweep": _synth_sweep,
}


def preset_names() -> List[str]:
    return sorted(PRESETS)


def get_preset(name: str) -> CampaignSpec:
    try:
        builder = PRESETS[name]
    except KeyError:
        raise CampaignError(
            f"unknown campaign preset {name!r}; available: "
            f"{', '.join(preset_names())}"
        )
    return builder()
