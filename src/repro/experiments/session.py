"""Persistent run sessions: JSONL artifacts that make the grid resumable.

A :class:`RunSession` owns one append-only JSONL file.  The first line is a
``session`` header recording the profile/seed the grid was launched with;
every subsequent line is one completed :class:`ScenarioResult`.  Because
records are appended (and flushed) as each scenario finishes, killing the
process midway loses at most the in-flight scenarios — rerunning with
``resume=True`` reloads the file, skips every recorded scenario, and the
grid completes without re-executing finished work.

A trailing half-written line (the signature of a hard kill) is tolerated on
load and simply dropped; its scenario reruns.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.errors import ReproError
from repro.experiments.runner import Scenario, ScenarioResult

ScenarioKey = Tuple[str, str, str]

#: Bumped when the on-disk record shape changes incompatibly, or when the
#: results a recorded grid identity would produce change (version 2:
#: unplanned scenarios salt the LLM seed per app, so resuming a
#: version-1 stochastic session would silently blend old and new
#: behaviour draws in one grid).
SESSION_FORMAT_VERSION = 2


class SessionError(ReproError):
    """Raised for unusable session artifacts (bad header, profile mismatch)."""


class RunSession:
    """Records every completed scenario of one experiment grid to JSONL.

    Thread-safe: :meth:`record` may be called concurrently from worker
    threads; a lock serialises the appends so lines never interleave.
    """

    def __init__(self, path: Union[str, Path], resume: bool = False) -> None:
        self.path = Path(path)
        self.resume = resume
        self._lock = threading.Lock()
        self._results: Dict[ScenarioKey, ScenarioResult] = {}
        self._meta: Optional[dict] = None
        #: Count of unusable lines dropped during load (partial writes).
        self.dropped_lines = 0
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if resume and self.path.exists():
            self._load()
        elif not resume:
            # Refuse to clobber checkpointed work: a forgotten --resume must
            # not silently wipe a grid's worth of recorded results.
            if self.path.exists() and self.path.stat().st_size > 0:
                raise SessionError(
                    f"session file {self.path} already has content; pass "
                    f"resume=True (--resume) to continue it, or remove the "
                    f"file to start over"
                )
            self.path.write_text("", encoding="utf-8")

    # ------------------------------------------------------------------
    def _load(self) -> None:
        with self.path.open("r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    # Half-written trailing line from a killed run.
                    self.dropped_lines += 1
                    continue
                if not isinstance(record, dict):
                    self.dropped_lines += 1
                    continue
                kind = record.get("type")
                if kind == "session":
                    self._check_header(record)
                    self._meta = record
                elif kind == "scenario":
                    try:
                        sr = ScenarioResult.from_dict(record)
                    except (KeyError, TypeError):
                        # Structurally broken record: drop it and let the
                        # scenario rerun rather than refusing the session.
                        self.dropped_lines += 1
                        continue
                    self._results[sr.scenario.key] = sr
        if self._results and self._meta is None:
            # Without the header there is no way to know which profile/seed
            # produced these records; blending them into a new run would be
            # exactly the mix-up bind() exists to prevent.
            raise SessionError(
                f"session file {self.path} has scenario records but no valid "
                f"session header; refusing to resume from it"
            )

    def _check_header(self, record: dict) -> None:
        version = record.get("version")
        if version != SESSION_FORMAT_VERSION:
            raise SessionError(
                f"session file {self.path} has format version {version!r}; "
                f"this build reads version {SESSION_FORMAT_VERSION}"
            )

    # ------------------------------------------------------------------
    def bind(
        self,
        profile: str,
        seed: int,
        config_fingerprint: Optional[str] = None,
    ) -> None:
        """Pin the session to a runner's (profile, seed, config) identity.

        Writes the header on a fresh session; on resume, refuses to mix
        results produced under a different profile, seed or pipeline
        configuration — resuming a ``stochastic seed=3`` grid with
        ``seed=4``, or an ablated-config grid with the full config, would
        silently blend two different experiments.  Headers written before
        the fingerprint existed (no ``config_fingerprint`` key) are
        accepted as-is.
        """
        if self._meta is not None:
            got = (self._meta.get("profile"), self._meta.get("seed"))
            if got != (profile, seed):
                raise SessionError(
                    f"session {self.path} was recorded with profile="
                    f"{got[0]!r} seed={got[1]!r}; cannot resume with "
                    f"profile={profile!r} seed={seed!r}"
                )
            recorded_fp = self._meta.get("config_fingerprint")
            if (
                config_fingerprint is not None
                and recorded_fp is not None
                and recorded_fp != config_fingerprint
            ):
                raise SessionError(
                    f"session {self.path} was recorded with pipeline config "
                    f"{recorded_fp}; cannot resume with config "
                    f"{config_fingerprint}"
                )
            return
        self._meta = {
            "type": "session",
            "version": SESSION_FORMAT_VERSION,
            "profile": profile,
            "seed": seed,
            "config_fingerprint": config_fingerprint,
        }
        self._append(self._meta)

    # ------------------------------------------------------------------
    def record(self, result: ScenarioResult) -> None:
        """Persist one completed scenario (thread-safe, flushed on return).

        Serialized without per-stage wall-time telemetry: session files
        are deterministic functions of the grid identity (the backend
        byte-identity tests pin this), and wall-clock noise would break
        that.  Timing telemetry lives on the in-memory results and in
        campaign manifests instead.
        """
        payload = result.to_dict()
        payload["type"] = "scenario"
        self._append(payload)
        with self._lock:
            self._results[result.scenario.key] = result

    def _append(self, payload: dict) -> None:
        line = json.dumps(payload, sort_keys=True)
        with self._lock:
            with self.path.open("a", encoding="utf-8") as handle:
                handle.write(line + "\n")
                handle.flush()

    # ------------------------------------------------------------------
    def get(self, scenario: Scenario) -> Optional[ScenarioResult]:
        return self._results.get(scenario.key)

    def __contains__(self, scenario: Scenario) -> bool:
        return scenario.key in self._results

    def __len__(self) -> int:
        return len(self._results)

    def __iter__(self) -> Iterator[ScenarioResult]:
        return iter(self._results.values())

    @property
    def completed_keys(self) -> List[ScenarioKey]:
        return list(self._results.keys())

    @property
    def meta(self) -> Optional[dict]:
        return self._meta
