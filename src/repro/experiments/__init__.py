"""Experiment harness: the 80-scenario evaluation, campaigns and reports."""

from repro.experiments.runner import (
    ExperimentRunner,
    Scenario,
    ScenarioResult,
)
from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.store import (
    CacheStore,
    CacheStoreError,
    DirectoryCacheStore,
    SqliteCacheStore,
    open_store,
    parse_store_uri,
)
from repro.experiments.parallel import (
    BACKENDS,
    MAX_JOBS,
    ParallelExperimentRunner,
    resolve_jobs,
)
from repro.experiments.session import RunSession, SessionError
from repro.experiments.campaign import (
    CampaignError,
    CampaignResult,
    CampaignRunner,
    CampaignSpec,
    Variant,
    get_preset,
    load_campaign,
    load_spec_file,
    merge_manifests,
    normalize_manifest,
    parse_shard_spec,
    preset_names,
    shard_cell_indexes,
    shard_manifest_name,
)
from repro.experiments.report import render_campaign_report
from repro.experiments.tables import (
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.experiments.stats import (
    direction_stats,
    headline_summary,
    replicate_stats,
)

__all__ = [
    "BACKENDS",
    "MAX_JOBS",
    "CacheStore",
    "CacheStoreError",
    "CampaignError",
    "CampaignResult",
    "CampaignRunner",
    "CampaignSpec",
    "DirectoryCacheStore",
    "ExperimentRunner",
    "ParallelExperimentRunner",
    "ResultCache",
    "RunSession",
    "SessionError",
    "Scenario",
    "ScenarioResult",
    "SqliteCacheStore",
    "Variant",
    "cache_key",
    "direction_stats",
    "get_preset",
    "headline_summary",
    "load_campaign",
    "load_spec_file",
    "merge_manifests",
    "normalize_manifest",
    "open_store",
    "parse_shard_spec",
    "parse_store_uri",
    "preset_names",
    "shard_cell_indexes",
    "shard_manifest_name",
    "render_campaign_report",
    "render_table4",
    "render_table5",
    "render_translation_tables",
    "replicate_stats",
    "resolve_jobs",
]
