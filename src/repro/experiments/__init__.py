"""Experiment harness: the 80-scenario evaluation and table renderers."""

from repro.experiments.runner import (
    ExperimentRunner,
    Scenario,
    ScenarioResult,
)
from repro.experiments.parallel import ParallelExperimentRunner
from repro.experiments.session import RunSession, SessionError
from repro.experiments.tables import (
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.experiments.stats import direction_stats, headline_summary

__all__ = [
    "ExperimentRunner",
    "ParallelExperimentRunner",
    "RunSession",
    "SessionError",
    "Scenario",
    "ScenarioResult",
    "render_table4",
    "render_table5",
    "render_translation_tables",
    "direction_stats",
    "headline_summary",
]
