#!/usr/bin/env python3
"""Plug a custom LLM backend into LASSI.

The pipeline is LLM-agnostic (§III of the paper): anything implementing
``LLMClient.chat`` works.  This example wires an ``OllamaClient`` with a
*fake transport* that delegates to the simulated model — exactly the shape
of a real deployment (swap the transport for the default urllib one and
point ``base_url`` at a live Ollama server).
"""

from repro.hecbench import get_app
from repro.llm.base import ChatMessage
from repro.llm.clients import OllamaClient
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import LassiPipeline

backing = SimulatedLLM("deepseek", Dialect.CUDA, Dialect.OMP, plan=CellPlan())


def fake_ollama_transport(url: str, payload: dict) -> dict:
    """Stands in for a live Ollama server on localhost:11434."""
    messages = [ChatMessage(m["role"], m["content"]) for m in payload["messages"]]
    out = backing.chat(messages)
    return {
        "message": {"content": out.text},
        "prompt_eval_count": out.prompt_tokens,
        "eval_count": out.completion_tokens,
    }


def main() -> int:
    client = OllamaClient(
        model="deepseek-coder-v2:16b",
        context_length=163840,
        transport=fake_ollama_transport,  # drop this arg on a real server
    )
    app = get_app("entropy")
    pipeline = LassiPipeline(client, Dialect.CUDA, Dialect.OMP)
    result = pipeline.translate(
        app.cuda_source,
        reference_target_code=app.omp_source,
        args=app.args,
        work_scale=app.work_scale,
        launch_scale=app.launch_scale,
    )
    print(f"model: {client.name} (via Ollama wire protocol)")
    print(f"status: {result.status}, Sim-T {result.sim_t:.2f}, "
          f"ratio {result.ratio:.3f}")
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
