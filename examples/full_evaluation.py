#!/usr/bin/env python3
"""The paper's §V evaluation: the 80-scenario grid, Tables VI/VII and the
headline statistics, measured against the published numbers.

    python examples/full_evaluation.py            # full 80-scenario grid
    python examples/full_evaluation.py --quick    # 2 models x 4 apps slice
"""

import sys
import time

from repro.experiments import (
    ExperimentRunner,
    headline_summary,
    render_table4,
    render_table5,
    render_translation_tables,
)
from repro.llm.profiles import CUDA2OMP, OMP2CUDA


def main() -> int:
    quick = "--quick" in sys.argv
    runner = ExperimentRunner()

    print(render_table5())
    print()
    print(render_table4(runner.baselines))
    print()

    kwargs = {}
    if quick:
        kwargs = dict(models=["gpt4", "codestral"],
                      apps=["matrix-rotate", "jacobi", "bsearch", "colorwheel"])
    t0 = time.time()
    done = []

    def progress(sr):
        done.append(sr)
        s = sr.scenario
        print(f"  [{len(done):3d}] {s.direction:9s} {s.model_key:12s} "
              f"{s.app_name:16s} -> {sr.result.status}")

    print("Running LASSI scenarios...")
    results = runner.run(progress=progress, **kwargs)
    print(f"\n{len(results)} scenarios in {time.time() - t0:.0f}s\n")

    tables = render_translation_tables(results)
    print(tables[OMP2CUDA])
    print()
    print(tables[CUDA2OMP])
    print()
    print(headline_summary(results))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
