#!/usr/bin/env python3
"""Synthetic scenarios end-to-end: generate -> self-check -> evaluate ->
campaign report.

The Table IV suite is ten fixed apps; ``repro.synth`` makes the grid
open-ended.  This example:

1. generates a paired CUDA+OMP suite from three kernel families,
2. differentially self-checks every pair (the KernelBench-style oracle),
3. runs the LASSI evaluation grid over the generated suite, and
4. sweeps a campaign (baseline vs. no-knowledge) over the same suite and
   renders the comparison report.

Everything is deterministic: the suite spec string is the experiment's
full identity, and generated app names encode their generation tuples.
"""

import tempfile

from repro.experiments import (
    CampaignRunner,
    CampaignSpec,
    ParallelExperimentRunner,
    Variant,
    headline_summary,
    render_campaign_report,
)
from repro.synth import check_apps, parse_suite_spec

SUITE = "synth:stencil,reduction,histogram:seeds=2"


def main() -> int:
    # 1. + 2. Generate the suite and self-check every pair.
    spec = parse_suite_spec(SUITE)
    apps = spec.apps()
    reports = check_apps(apps)
    print(f"generated {len(apps)} paired apps from {SUITE}")
    for app, report in zip(apps, reports):
        status = "pass" if report.ok else f"FAIL[{report.stage}]"
        print(f"  {app.name:28s} {status}   {app.notes}")
    if not all(r.ok for r in reports):
        return 1

    # 3. Evaluate the LASSI grid over the generated suite (one direction,
    #    two models, to keep the example quick).
    runner = ParallelExperimentRunner(jobs=4, suite=SUITE)
    results = runner.run(models=["gpt4", "codestral"],
                         directions=["omp2cuda"])
    print(f"\nevaluated {len(results)} scenarios over {SUITE}:\n")
    print(headline_summary(results))

    # 4. Campaign sweep over the same suite, then the comparison report.
    campaign = CampaignSpec(
        name="synth-example",
        suite=SUITE,
        models=["gpt4"],
        directions=["omp2cuda"],
        variants=[
            Variant(name="baseline"),
            Variant(name="no-knowledge",
                    overrides={"include_knowledge": False}),
        ],
    )
    with tempfile.TemporaryDirectory() as root:
        result = CampaignRunner(campaign, root=root, jobs=4).run()
        print()
        print(render_campaign_report(result))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
