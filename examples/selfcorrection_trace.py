#!/usr/bin/env python3
"""Watch the self-correction loops work: a scenario planned to need three
correction rounds (compile, compile, execute) prints its full attempt trace
with the compiler/runtime stderr that drove each re-prompt.
"""

from repro.hecbench import get_app
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import LassiPipeline

PLAN = CellPlan(
    self_corrections=3,
    fault_ids=("missing-semicolon", "kernel-called-directly", "oob-guard-cuda"),
)


def main() -> int:
    app = get_app("pathfinder")
    llm = SimulatedLLM("wizardcoder", Dialect.OMP, Dialect.CUDA, plan=PLAN)
    pipeline = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
    result = pipeline.translate(
        app.omp_source,
        reference_target_code=app.cuda_source,
        args=app.args,
        work_scale=app.work_scale,
        launch_scale=app.launch_scale,
    )

    print(f"=== self-correction trace: {app.name}, {llm.name} ===\n")
    for attempt in result.attempts:
        print(f"attempt {attempt.index} ({attempt.kind}): "
              f"compiled={attempt.compiled} executed={attempt.executed}")
        if attempt.stderr:
            first = attempt.stderr.splitlines()[0]
            print(f"   error fed back to the LLM: {first}")
    print(f"\nfinal status: {result.status} after "
          f"{result.self_corrections} self-corrections")
    assert result.self_corrections == 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
