#!/usr/bin/env python3
"""Watch the self-correction loops work — live, via the pipeline event bus.

A scenario planned to need three correction rounds (compile, compile,
execute) is run with a subscriber attached to the pipeline's
:class:`~repro.pipeline.events.EventBus`; every stage entry/exit,
recorded attempt and issued correction prints as it happens, followed by
the recorded attempt trace and the per-stage wall-time breakdown the
engine collected through the same bus.
"""

from repro.api import build_pipeline
from repro.hecbench import get_app
from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline.events import (
    AttemptRecorded,
    CorrectionIssued,
    PipelineEvent,
    StageFinished,
)

PLAN = CellPlan(
    self_corrections=3,
    fault_ids=("missing-semicolon", "kernel-called-directly", "oob-guard-cuda"),
)


def narrate(event: PipelineEvent) -> None:
    if isinstance(event, AttemptRecorded):
        print(f"  [attempt {event.index}] {event.kind} (in {event.stage})")
    elif isinstance(event, CorrectionIssued):
        first = event.stderr.splitlines()[0] if event.stderr else ""
        print(f"  [correction #{event.corrections}] {event.kind}: {first}")
    elif isinstance(event, StageFinished):
        print(f"  [stage] {event.stage:16s} {event.outcome:20s} "
              f"{event.seconds * 1e3:8.2f} ms")


def main() -> int:
    app = get_app("pathfinder")
    llm = SimulatedLLM("wizardcoder", Dialect.OMP, Dialect.CUDA, plan=PLAN)
    pipeline = build_pipeline(llm, Dialect.OMP, Dialect.CUDA,
                              subscribers=[narrate])

    print(f"=== self-correction trace: {app.name}, {llm.name} ===\n")
    result = pipeline.run(
        app.omp_source,
        reference_target_code=app.cuda_source,
        args=app.args,
        work_scale=app.work_scale,
        launch_scale=app.launch_scale,
    )

    print("\nattempt record:")
    for attempt in result.attempts:
        print(f"attempt {attempt.index} ({attempt.kind}): "
              f"compiled={attempt.compiled} executed={attempt.executed}")
        if attempt.stderr:
            first = attempt.stderr.splitlines()[0]
            print(f"   error fed back to the LLM: {first}")

    print("\nwhere the time went:")
    for stage, seconds in result.stage_seconds.items():
        print(f"  {stage:16s} {seconds * 1e3:8.2f} ms")

    print(f"\nfinal status: {result.status} after "
          f"{result.self_corrections} self-corrections")
    assert result.self_corrections == 3
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
