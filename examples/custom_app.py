#!/usr/bin/env python3
"""Translate a program that is NOT in the suite: a SAXPY-with-reduction
kernel, defined inline.  Shows the public pipeline API directly (no
experiment harness): you provide source + reference, LASSI does the rest.
"""

from repro.llm.profiles import CellPlan
from repro.llm.simulated import SimulatedLLM
from repro.minilang.source import Dialect
from repro.pipeline import LassiPipeline

OMP_SOURCE = r"""
// saxpy with an L2-norm check, OpenMP target offload
int main(int argc, char** argv) {
  int n = 2048;
  float a = 2.5f;
  float* x = (float*)malloc(n * sizeof(float));
  float* y = (float*)malloc(n * sizeof(float));
  srand(11);
  for (int i = 0; i < n; i++) {
    x[i] = (rand() % 100) * 0.01f;
    y[i] = (rand() % 100) * 0.01f;
  }
  double norm = 0.0;
  #pragma omp target data map(tofrom: y[0:n]) map(to: x[0:n])
  {
    #pragma omp target teams distribute parallel for
    for (int i = 0; i < n; i++) {
      y[i] = a * x[i] + y[i];
    }
    #pragma omp target teams distribute parallel for reduction(+: norm)
    for (int i = 0; i < n; i++) {
      norm += y[i] * y[i];
    }
  }
  printf("norm %.4f\n", norm);
  free(x);
  free(y);
  return 0;
}
"""

CUDA_REFERENCE = r"""
// saxpy with an L2-norm check, CUDA
__global__ void saxpy(float* x, float* y, float a, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    y[i] = a * x[i] + y[i];
  }
}

__global__ void norm2(float* y, double* out, int n) {
  int i = blockIdx.x * blockDim.x + threadIdx.x;
  if (i < n) {
    atomicAdd(&out[0], y[i] * y[i]);
  }
}

int main(int argc, char** argv) {
  int n = 2048;
  float a = 2.5f;
  float* x = (float*)malloc(n * sizeof(float));
  float* y = (float*)malloc(n * sizeof(float));
  srand(11);
  for (int i = 0; i < n; i++) {
    x[i] = (rand() % 100) * 0.01f;
    y[i] = (rand() % 100) * 0.01f;
  }
  float* d_x;
  float* d_y;
  double* d_norm;
  cudaMalloc(&d_x, n * sizeof(float));
  cudaMalloc(&d_y, n * sizeof(float));
  cudaMalloc(&d_norm, sizeof(double));
  cudaMemcpy(d_x, x, n * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemcpy(d_y, y, n * sizeof(float), cudaMemcpyHostToDevice);
  cudaMemset(d_norm, 0, sizeof(double));
  saxpy<<<(n + 255) / 256, 256>>>(d_x, d_y, a, n);
  norm2<<<(n + 255) / 256, 256>>>(d_y, d_norm, n);
  cudaDeviceSynchronize();
  double* h_norm = (double*)malloc(sizeof(double));
  cudaMemcpy(h_norm, d_norm, sizeof(double), cudaMemcpyDeviceToHost);
  printf("norm %.4f\n", h_norm[0]);
  cudaFree(d_x);
  cudaFree(d_y);
  cudaFree(d_norm);
  free(x);
  free(y);
  free(h_norm);
  return 0;
}
"""


def main() -> int:
    llm = SimulatedLLM("codestral", Dialect.OMP, Dialect.CUDA, plan=CellPlan())
    pipeline = LassiPipeline(llm, Dialect.OMP, Dialect.CUDA)
    result = pipeline.translate(
        OMP_SOURCE, reference_target_code=CUDA_REFERENCE
    )
    print(f"status: {result.status}, verified: {result.verified}")
    print(f"Sim-T {result.sim_t:.2f}  Sim-L {result.sim_l:.2f}  "
          f"Ratio {result.ratio:.3f}")
    print("\n--- generated CUDA ---")
    print(result.generated_code)
    return 0 if result.ok else 1


if __name__ == "__main__":
    raise SystemExit(main())
