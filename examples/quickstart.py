#!/usr/bin/env python3
"""Quickstart: translate one HeCBench app with one (simulated) LLM.

Runs the full LASSI pipeline — baseline preparation, prompt assembly with
self-prompting, generation, self-correcting loops, automated verification —
and prints the generated code plus the paper's five metrics.

    python examples/quickstart.py [app-name] [model-key]
"""

import sys

from repro.experiments.runner import ExperimentRunner, Scenario
from repro.hecbench import app_names
from repro.llm.registry import model_keys


def main() -> int:
    app = sys.argv[1] if len(sys.argv) > 1 else "matrix-rotate"
    model = sys.argv[2] if len(sys.argv) > 2 else "gpt4"
    if app not in app_names() or model not in model_keys():
        print(f"apps: {', '.join(app_names())}")
        print(f"models: {', '.join(model_keys())}")
        return 1

    print(f"=== LASSI: translating {app} (OpenMP -> CUDA) with {model} ===\n")
    runner = ExperimentRunner()
    scenario = Scenario(model_key=model, direction="omp2cuda", app_name=app)
    result = runner.run_scenario(scenario).result

    print(f"status:            {result.status}")
    print(f"self-corrections:  {result.self_corrections}")
    if result.ok:
        print(f"runtime (sim):     {result.runtime_seconds:.4f} s")
        print(f"ratio vs ref:      {result.ratio:.4f}")
        print(f"Sim-T:             {result.sim_t:.2f}")
        print(f"Sim-L:             {result.sim_l:.2f}")
        print(f"output verified:   {result.verified}")
        print("\n--- generated CUDA code ---")
        print(result.generated_code)
    else:
        print(f"failure detail:    {result.failure_detail.splitlines()[0]}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
